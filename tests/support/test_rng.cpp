#include "support/rng.hpp"

#include <cmath>
#include <gtest/gtest.h>
#include <set>
#include <vector>

#include "support/contracts.hpp"

namespace neatbound {
namespace {

TEST(Splitmix, DeterministicSequence) {
  std::uint64_t s1 = 42, s2 = 42;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(splitmix64_next(s1), splitmix64_next(s2));
  }
}

TEST(Splitmix, KnownVector) {
  // Reference value from the splitmix64 reference implementation with
  // seed 0: first output is 0xe220a8397b1dcdaf.
  std::uint64_t s = 0;
  EXPECT_EQ(splitmix64_next(s), 0xe220a8397b1dcdafULL);
}

TEST(Mix64, BijectiveOnSamples) {
  std::set<std::uint64_t> outputs;
  for (std::uint64_t i = 0; i < 10000; ++i) outputs.insert(mix64(i));
  EXPECT_EQ(outputs.size(), 10000u);
}

TEST(Xoshiro, SameSeedSameStream) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro, DifferentSeedsDiffer) {
  Xoshiro256 a(7), b(8);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.next() == b.next());
  EXPECT_LE(equal, 1);
}

TEST(Xoshiro, SplitDecorrelates) {
  Xoshiro256 a(7);
  Xoshiro256 child = a.split();
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.next() == child.next());
  EXPECT_LE(equal, 1);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(1);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  // Mean of Uniform[0,1) is 0.5, stderr ≈ 0.0009; allow 5σ.
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.005);
}

TEST(Rng, UniformBelowRespectsBound) {
  Rng rng(2);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      ASSERT_LT(rng.uniform_below(bound), bound);
    }
  }
}

TEST(Rng, UniformBelowCoversSupport) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformBelowZeroThrows) {
  Rng rng(4);
  EXPECT_THROW((void)rng.uniform_below(0), ContractViolation);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(5);
  int hits = 0;
  const int trials = 200000;
  for (int i = 0; i < trials; ++i) hits += rng.bernoulli(0.3);
  // stderr = sqrt(0.3·0.7/200000) ≈ 0.001; allow 5σ.
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.006);
}

TEST(Rng, BernoulliDegenerate) {
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BinomialDegenerateCases) {
  Rng rng(7);
  EXPECT_EQ(rng.binomial(0, 0.5), 0u);
  EXPECT_EQ(rng.binomial(100, 0.0), 0u);
  EXPECT_EQ(rng.binomial(100, 1.0), 100u);
}

TEST(Rng, BinomialWithinRange) {
  Rng rng(8);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_LE(rng.binomial(50, 0.3), 50u);
  }
}

TEST(Rng, BinomialMeanSmallNp) {
  // The regime the simulator lives in: tiny per-round success counts.
  Rng rng(9);
  const std::uint64_t n = 1000;
  const double p = 0.0005;  // mean 0.5
  double sum = 0.0;
  const int reps = 200000;
  for (int i = 0; i < reps; ++i) {
    sum += static_cast<double>(rng.binomial(n, p));
  }
  // var ≈ 0.5, stderr ≈ 0.0016; allow 5σ.
  EXPECT_NEAR(sum / reps, 0.5, 0.008);
}

TEST(Rng, BinomialMeanAndVarianceModerate) {
  Rng rng(10);
  const std::uint64_t n = 40;
  const double p = 0.25;
  double sum = 0.0, sumsq = 0.0;
  const int reps = 100000;
  for (int i = 0; i < reps; ++i) {
    const double x = static_cast<double>(rng.binomial(n, p));
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / reps;
  const double var = sumsq / reps - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);       // true mean 10
  EXPECT_NEAR(var, 7.5, 0.3);         // true var 7.5
}

TEST(Rng, BinomialLargeMeanChunksCorrectly) {
  // np = 5000 exercises the chunked path; mean/variance must survive.
  Rng rng(11);
  const std::uint64_t n = 100000;
  const double p = 0.05;
  double sum = 0.0;
  const int reps = 2000;
  for (int i = 0; i < reps; ++i) {
    sum += static_cast<double>(rng.binomial(n, p));
  }
  // mean 5000, sd ≈ 68.9, stderr ≈ 1.54; allow 5σ.
  EXPECT_NEAR(sum / reps, 5000.0, 8.0);
}

TEST(Rng, BinomialSymmetryPath) {
  // p > 1/2 goes through the reflection branch.
  Rng rng(12);
  double sum = 0.0;
  const int reps = 100000;
  for (int i = 0; i < reps; ++i) {
    sum += static_cast<double>(rng.binomial(20, 0.9));
  }
  EXPECT_NEAR(sum / reps, 18.0, 0.05);
}

TEST(Rng, GeometricMean) {
  Rng rng(13);
  const double p = 0.2;
  double sum = 0.0;
  const int reps = 200000;
  for (int i = 0; i < reps; ++i) {
    sum += static_cast<double>(rng.geometric_failures(p));
  }
  // mean (1-p)/p = 4, sd ≈ 4.47, stderr ≈ 0.01; allow 5σ.
  EXPECT_NEAR(sum / reps, 4.0, 0.06);
}

TEST(Rng, GeometricPOneIsZero) {
  Rng rng(14);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.geometric_failures(1.0), 0u);
}

TEST(Rng, SplitStreamsIndependentish) {
  Rng a(15);
  Rng b = a.split();
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.bits() == b.bits());
  EXPECT_LE(equal, 1);
}

// Chi-square-style uniformity check over 16 buckets.
TEST(Rng, UniformBucketsBalanced) {
  Rng rng(16);
  std::vector<int> buckets(16, 0);
  const int reps = 160000;
  for (int i = 0; i < reps; ++i) {
    ++buckets[static_cast<std::size_t>(rng.uniform() * 16.0)];
  }
  double chi2 = 0.0;
  const double expected = reps / 16.0;
  for (const int b : buckets) {
    chi2 += (b - expected) * (b - expected) / expected;
  }
  // 15 dof: P[chi2 > 37.7] ≈ 0.001.
  EXPECT_LT(chi2, 37.7);
}

}  // namespace
}  // namespace neatbound
