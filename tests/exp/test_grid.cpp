#include <gtest/gtest.h>

#include <stdexcept>

#include "exp/grid.hpp"

namespace neatbound::exp {
namespace {

TEST(SweepGrid, EmptyGridHasOnePoint) {
  SweepGrid grid;
  EXPECT_EQ(grid.size(), 1u);
  EXPECT_EQ(grid.point(0).axis_count(), 0u);
}

TEST(SweepGrid, SizeIsProductOfAxes) {
  SweepGrid grid;
  grid.axis("a", {1, 2, 3}).axis("b", {10, 20});
  EXPECT_EQ(grid.axis_count(), 2u);
  EXPECT_EQ(grid.size(), 6u);
}

TEST(SweepGrid, RowMajorOrderLastAxisFastest) {
  SweepGrid grid;
  grid.axis("a", {1, 2}).axis("b", {10, 20, 30});
  // Expected enumeration: (1,10) (1,20) (1,30) (2,10) (2,20) (2,30) —
  // matching nested for-loops with "a" outermost.
  const auto points = grid.points();
  ASSERT_EQ(points.size(), 6u);
  const double expected[6][2] = {{1, 10}, {1, 20}, {1, 30},
                                 {2, 10}, {2, 20}, {2, 30}};
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(points[i].index(), i);
    EXPECT_DOUBLE_EQ(points[i].value("a"), expected[i][0]);
    EXPECT_DOUBLE_EQ(points[i].value("b"), expected[i][1]);
    EXPECT_DOUBLE_EQ(points[i].value(0), expected[i][0]);
    EXPECT_DOUBLE_EQ(points[i].value(1), expected[i][1]);
  }
}

TEST(SweepGrid, PointMatchesPointsEnumeration) {
  SweepGrid grid;
  grid.axis("x", {0.5, 1.5}).axis("y", {2.5}).axis("z", {3, 4, 5});
  const auto points = grid.points();
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const GridPoint p = grid.point(i);
    for (std::size_t a = 0; a < grid.axis_count(); ++a) {
      EXPECT_DOUBLE_EQ(p.value(a), points[i].value(a));
    }
  }
}

TEST(SweepGrid, PointsOutliveTheGrid) {
  std::vector<GridPoint> points;
  {
    SweepGrid grid;
    grid.axis("a", {1, 2}).axis("b", {7});
    points = grid.points();
  }  // grid destroyed; points must stay fully usable
  ASSERT_EQ(points.size(), 2u);
  EXPECT_DOUBLE_EQ(points[1].value("a"), 2.0);
  EXPECT_DOUBLE_EQ(points[1].value("b"), 7.0);
  EXPECT_THROW((void)points[0].value("missing"), std::out_of_range);
}

TEST(SweepGrid, RejectsEmptyAxis) {
  SweepGrid grid;
  EXPECT_THROW(grid.axis("empty", {}), std::invalid_argument);
}

TEST(SweepGrid, RejectsDuplicateAxis) {
  SweepGrid grid;
  grid.axis("a", {1});
  EXPECT_THROW(grid.axis("a", {2}), std::invalid_argument);
}

TEST(SweepGrid, UnknownAxisNameThrows) {
  SweepGrid grid;
  grid.axis("a", {1});
  EXPECT_THROW((void)grid.point(0).value("missing"), std::out_of_range);
  EXPECT_THROW((void)grid.axis_index("missing"), std::out_of_range);
}

TEST(SweepGrid, OutOfRangePointThrows) {
  SweepGrid grid;
  grid.axis("a", {1, 2});
  EXPECT_THROW((void)grid.point(2), std::out_of_range);
}

}  // namespace
}  // namespace neatbound::exp
