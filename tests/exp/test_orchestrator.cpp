#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <random>
#include <stdexcept>

#include "exp/grid.hpp"
#include "exp/orchestrator.hpp"
#include "sim/runner.hpp"
#include "stats/summary.hpp"

namespace neatbound::exp {
namespace {

sim::ExperimentConfig cell_config(double nu, double p,
                                  sim::AdversaryKind kind) {
  sim::ExperimentConfig config;
  config.engine.miner_count = 12;
  config.engine.adversary_fraction = nu;
  config.engine.p = p;
  config.engine.delta = 2;
  config.engine.rounds = 800;
  config.adversary = kind;
  config.seeds = 3;
  config.base_seed = 9000;
  return config;
}

void expect_identical(const sim::ExperimentSummary& a,
                      const sim::ExperimentSummary& b) {
  EXPECT_EQ(a.violation_depth.count(), b.violation_depth.count());
  EXPECT_DOUBLE_EQ(a.convergence_opportunities.mean(),
                   b.convergence_opportunities.mean());
  EXPECT_DOUBLE_EQ(a.adversary_blocks.mean(), b.adversary_blocks.mean());
  EXPECT_DOUBLE_EQ(a.honest_blocks.variance(), b.honest_blocks.variance());
  EXPECT_DOUBLE_EQ(a.violation_depth.max(), b.violation_depth.max());
  EXPECT_DOUBLE_EQ(a.max_reorg_depth.mean(), b.max_reorg_depth.mean());
  EXPECT_DOUBLE_EQ(a.max_divergence.mean(), b.max_divergence.mean());
  EXPECT_DOUBLE_EQ(a.disagreement_rounds.mean(),
                   b.disagreement_rounds.mean());
  EXPECT_DOUBLE_EQ(a.chain_growth.mean(), b.chain_growth.mean());
  EXPECT_DOUBLE_EQ(a.chain_quality.mean(), b.chain_quality.mean());
  EXPECT_DOUBLE_EQ(a.best_height.mean(), b.best_height.mean());
  EXPECT_DOUBLE_EQ(a.violation_exceeds_t.mean(),
                   b.violation_exceeds_t.mean());
}

/// The tentpole guarantee: the pooled grid×seed sweep produces, for every
/// adversary kind, summaries bit-identical to running each cell through
/// the serial single-cell runner.
TEST(Orchestrator, GridParallelBitIdenticalToSerialForEveryAdversaryKind) {
  const sim::AdversaryKind kinds[] = {
      sim::AdversaryKind::kNull, sim::AdversaryKind::kMaxDelay,
      sim::AdversaryKind::kPrivateWithhold, sim::AdversaryKind::kBalanceAttack,
      sim::AdversaryKind::kSelfishMining};

  SweepGrid grid;
  grid.axis("kind", {0, 1, 2, 3, 4});
  grid.axis("nu", {0.2, 0.35});

  const auto build = [&](const GridPoint& point) {
    return cell_config(point.value("nu"), 0.01,
                       kinds[static_cast<std::size_t>(point.value("kind"))]);
  };

  const SweepOptions serial{.violation_t = 5, .threads = 1};
  const SweepOptions pooled{.violation_t = 5, .threads = 4};
  const auto parallel_cells = run_sweep(grid, build, pooled);
  ASSERT_EQ(parallel_cells.size(), grid.size());

  for (const SweepCell& cell : parallel_cells) {
    const auto serial_summary =
        sim::run_experiment(cell.config, serial.violation_t);
    expect_identical(serial_summary, cell.summary);
  }
}

TEST(Orchestrator, CellsComeBackInGridOrder) {
  SweepGrid grid;
  grid.axis("nu", {0.1, 0.2, 0.3});
  const auto build = [](const GridPoint& point) {
    return cell_config(point.value("nu"), 0.02,
                       sim::AdversaryKind::kMaxDelay);
  };
  const auto cells =
      run_sweep(grid, build, {.violation_t = 5, .threads = 3});
  ASSERT_EQ(cells.size(), 3u);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].point.index(), i);
    EXPECT_DOUBLE_EQ(cells[i].point.value("nu"), 0.1 + 0.1 * static_cast<double>(i));
    EXPECT_EQ(cells[i].summary.honest_blocks.count(), cells[i].config.seeds);
  }
}

TEST(Orchestrator, CustomFactoryIsUsedAndSeedsVary) {
  SweepGrid grid;
  grid.axis("nu", {0.25});
  const auto build = [](const GridPoint& point) {
    return cell_config(point.value("nu"), 0.01,
                       sim::AdversaryKind::kMaxDelay);
  };
  std::atomic<int> factory_calls{0};
  const auto cells = run_sweep_with(
      grid, build, {.violation_t = 5, .threads = 2},
      [&](const sim::ExperimentConfig& config,
          const sim::EngineConfig& engine_config) {
        ++factory_calls;
        EXPECT_GE(engine_config.seed, config.base_seed);
        EXPECT_LT(engine_config.seed, config.base_seed + config.seeds);
        return sim::default_adversary_factory(config.adversary)(engine_config);
      });
  EXPECT_EQ(factory_calls.load(), 3);
  expect_identical(sim::run_experiment(cells[0].config, 5), cells[0].summary);
}

TEST(Orchestrator, WorkerExceptionPropagatesToCaller) {
  SweepGrid grid;
  grid.axis("nu", {0.1, 0.2});
  const auto build = [](const GridPoint& point) {
    return cell_config(point.value("nu"), 0.01,
                       sim::AdversaryKind::kMaxDelay);
  };
  EXPECT_THROW(
      (void)run_sweep_with(
          grid, build, {.violation_t = 5, .threads = 4},
          [](const sim::ExperimentConfig&, const sim::EngineConfig&)
              -> std::unique_ptr<sim::Adversary> {
            throw std::runtime_error("factory boom");
          }),
      std::runtime_error);
}

/// Parallel-reduction property: merging chunked accumulators matches one
/// accumulator fed the same stream, for any split — count exactly,
/// moments to floating-point accuracy.
TEST(RunningStatsMerge, MatchesSingleAccumulatorOnAnySplit) {
  std::mt19937_64 gen(20260727);
  std::normal_distribution<double> normal(3.0, 2.5);
  const std::size_t samples = 4096;
  std::vector<double> stream(samples);
  for (double& x : stream) x = normal(gen);

  stats::RunningStats whole;
  for (const double x : stream) whole.add(x);

  for (const std::size_t chunks : {1u, 2u, 3u, 7u, 16u, 101u}) {
    std::vector<stats::RunningStats> parts(chunks);
    for (std::size_t i = 0; i < samples; ++i) {
      parts[i % chunks].add(stream[i]);
    }
    stats::RunningStats merged;
    for (const auto& part : parts) merged.merge(part);

    EXPECT_EQ(merged.count(), whole.count());
    EXPECT_NEAR(merged.mean(), whole.mean(), 1e-12 * std::fabs(whole.mean()));
    EXPECT_NEAR(merged.variance(), whole.variance(),
                1e-10 * whole.variance());
    EXPECT_DOUBLE_EQ(merged.min(), whole.min());
    EXPECT_DOUBLE_EQ(merged.max(), whole.max());
  }
}

TEST(RunningStatsMerge, MergingEmptyIsIdentity) {
  stats::RunningStats a;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(stats::RunningStats{});
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), mean);

  stats::RunningStats empty;
  stats::RunningStats b;
  b.add(5.0);
  empty.merge(b);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 5.0);
  EXPECT_DOUBLE_EQ(empty.min(), 5.0);
  EXPECT_DOUBLE_EQ(empty.max(), 5.0);
}

}  // namespace
}  // namespace neatbound::exp
