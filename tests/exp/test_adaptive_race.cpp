// TSan-targeted race test for the adaptive wave loop: many cells, many
// waves, an aggressively threaded pool — and the serial run as the oracle.
// Under NEATBOUND_SANITIZE=thread this is the suite that drags every
// wave's (cell × seed) fan-out, result-slot writes and wave-boundary fold
// across enough schedules for TSan to observe a conflict; in a plain
// build it doubles as a bit-identity regression at a larger scale than
// tests/exp/test_adaptive.cpp covers.
#include <gtest/gtest.h>

#include <cstdint>

#include "exp/adaptive.hpp"
#include "exp/grid.hpp"
#include "sim/runner.hpp"

namespace neatbound::exp {
namespace {

ConfigBuilder race_builder() {
  return [](const GridPoint& point) {
    sim::ExperimentConfig config;
    config.engine.miner_count = 10;
    config.engine.adversary_fraction = point.value("nu");
    config.engine.p = point.value("p");
    config.engine.delta = 2;
    config.engine.rounds = 300;
    config.adversary = sim::AdversaryKind::kPrivateWithhold;
    config.seeds = 8;
    config.base_seed = 4100;
    return config;
  };
}

void expect_identical(const sim::ExperimentSummary& a,
                      const sim::ExperimentSummary& b) {
  EXPECT_EQ(a.violation_depth.count(), b.violation_depth.count());
  EXPECT_DOUBLE_EQ(a.violation_depth.mean(), b.violation_depth.mean());
  EXPECT_DOUBLE_EQ(a.honest_blocks.variance(), b.honest_blocks.variance());
  EXPECT_DOUBLE_EQ(a.adversary_blocks.mean(), b.adversary_blocks.mean());
  EXPECT_DOUBLE_EQ(a.chain_growth.mean(), b.chain_growth.mean());
  EXPECT_DOUBLE_EQ(a.chain_quality.mean(), b.chain_quality.mean());
}

TEST(AdaptiveRace, ManyWavesManyThreadsMatchSerialBitForBit) {
  SweepGrid grid;
  grid.axis("nu", {0.15, 0.25, 0.35, 0.45});
  grid.axis("p", {0.005, 0.02, 0.05});

  AdaptiveOptions adaptive;
  adaptive.min_seeds = 2;
  adaptive.batch = 2;      // small batches force several waves per cell
  adaptive.max_seeds = 8;
  adaptive.half_width = 0.0;  // unreachable target: every cell runs to max

  const auto serial = run_sweep_adaptive(
      grid, race_builder(), {.violation_t = 4, .threads = 1}, adaptive);
  const auto threaded = run_sweep_adaptive(
      grid, race_builder(), {.violation_t = 4, .threads = 8}, adaptive);

  ASSERT_EQ(threaded.cells.size(), serial.cells.size());
  EXPECT_EQ(threaded.waves, serial.waves);
  EXPECT_EQ(threaded.engine_runs, serial.engine_runs);
  for (std::size_t i = 0; i < serial.cells.size(); ++i) {
    EXPECT_EQ(threaded.cells[i].seeds_used, serial.cells[i].seeds_used);
    EXPECT_EQ(threaded.cells[i].violations, serial.cells[i].violations);
    expect_identical(threaded.cells[i].cell.summary,
                     serial.cells[i].cell.summary);
  }
}

TEST(AdaptiveRace, RepeatedThreadedRunsAreStable) {
  // Same sweep, several threaded executions: any schedule-dependent fold
  // would eventually disagree with the first run.
  SweepGrid grid;
  grid.axis("nu", {0.2, 0.4});
  grid.axis("p", {0.01, 0.04});

  AdaptiveOptions adaptive;
  adaptive.min_seeds = 2;
  adaptive.batch = 3;
  adaptive.max_seeds = 8;
  adaptive.half_width = 0.0;

  const auto reference = run_sweep_adaptive(
      grid, race_builder(), {.violation_t = 4, .threads = 6}, adaptive);
  for (int repeat = 0; repeat < 3; ++repeat) {
    const auto rerun = run_sweep_adaptive(
        grid, race_builder(), {.violation_t = 4, .threads = 6}, adaptive);
    ASSERT_EQ(rerun.cells.size(), reference.cells.size());
    for (std::size_t i = 0; i < reference.cells.size(); ++i) {
      EXPECT_EQ(rerun.cells[i].violations, reference.cells[i].violations);
      expect_identical(rerun.cells[i].cell.summary,
                       reference.cells[i].cell.summary);
    }
  }
}

}  // namespace
}  // namespace neatbound::exp
