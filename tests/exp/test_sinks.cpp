#include <algorithm>
#include <cstdio>
#include <fstream>
#include <gtest/gtest.h>
#include <memory>
#include <sstream>

#include "exp/bench_io.hpp"
#include "exp/sinks.hpp"
#include "support/contracts.hpp"

namespace neatbound::exp {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(TableSink, RendersSectionsInOrder) {
  std::ostringstream os;
  TableSink sink(os);
  sink.begin_section("first", {"a", "b"});
  sink.add_row({"1", "2"});
  sink.begin_section("second", {"c"});
  sink.add_row({"3"});
  sink.finish();
  const std::string out = os.str();
  const auto first = out.find("## first");
  const auto second = out.find("## second");
  ASSERT_NE(first, std::string::npos);
  ASSERT_NE(second, std::string::npos);
  EXPECT_LT(first, second);
  EXPECT_LT(out.find("| 1 |"), second);  // rows render with their section
}

TEST(TableSink, EmptySectionNameOmitsHeading) {
  std::ostringstream os;
  TableSink sink(os);
  sink.begin_section("", {"a"});
  sink.add_row({"1"});
  sink.finish();
  EXPECT_EQ(os.str().find("##"), std::string::npos);
}

TEST(TableSink, RowBeforeSectionIsContractViolation) {
  std::ostringstream os;
  TableSink sink(os);
  EXPECT_THROW(sink.add_row({"1"}), ContractViolation);
}

TEST(CsvSink, SectionColumnAndSingleHeaderForUniformSchema) {
  const std::string path = ::testing::TempDir() + "exp_sink_uniform.csv";
  {
    CsvSink sink(path);
    sink.begin_section("s1", {"x", "y"});
    sink.add_row({"1", "2"});
    sink.begin_section("s2", {"x", "y"});
    sink.add_row({"3", "4"});
    sink.finish();
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "section,x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "s1,1,2");
  std::getline(in, line);
  EXPECT_EQ(line, "s2,3,4");
  EXPECT_FALSE(std::getline(in, line));  // header not repeated
  std::remove(path.c_str());
}

TEST(CsvSink, ReemitsHeaderWhenSchemaChanges) {
  const std::string path = ::testing::TempDir() + "exp_sink_schema.csv";
  {
    CsvSink sink(path);
    sink.begin_section("s1", {"x"});
    sink.add_row({"1"});
    sink.begin_section("s2", {"y", "z"});
    sink.add_row({"2", "3"});
    sink.finish();
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "section,x");
  std::getline(in, line);
  EXPECT_EQ(line, "s1,1");
  std::getline(in, line);
  EXPECT_EQ(line, "section,y,z");
  std::getline(in, line);
  EXPECT_EQ(line, "s2,2,3");
  std::remove(path.c_str());
}

TEST(CsvSink, UnnamedSectionsOmitSectionColumn) {
  const std::string path = ::testing::TempDir() + "exp_sink_unnamed.csv";
  {
    CsvSink sink(path);
    sink.begin_section("", {"x", "y"});
    sink.add_row({"1", "2"});
    sink.finish();
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");  // the pre-orchestrator --csv schema
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::remove(path.c_str());
}

TEST(CsvSink, SectionColumnAppearsOnceAnySectionIsNamed) {
  const std::string path = ::testing::TempDir() + "exp_sink_mixed.csv";
  {
    CsvSink sink(path);
    sink.begin_section("", {"x"});
    sink.add_row({"1"});
    sink.begin_section("named", {"x"});
    sink.add_row({"2"});
    sink.finish();
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x");
  std::getline(in, line);
  EXPECT_EQ(line, "1");
  std::getline(in, line);
  EXPECT_EQ(line, "section,x");  // header re-emitted with the new column
  std::getline(in, line);
  EXPECT_EQ(line, "named,2");
  std::remove(path.c_str());
}

TEST(CsvSink, QuotesSectionNamesWithCommas) {
  const std::string path = ::testing::TempDir() + "exp_sink_quote.csv";
  {
    CsvSink sink(path);
    sink.begin_section("nu = 0.1, c = 2", {"x"});
    sink.add_row({"1"});
    sink.finish();
  }
  const std::string text = slurp(path);
  EXPECT_NE(text.find("\"nu = 0.1, c = 2\",1"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CsvSink, WrongRowWidthIsContractViolation) {
  const std::string path = ::testing::TempDir() + "exp_sink_width.csv";
  CsvSink sink(path);
  sink.begin_section("s", {"a", "b"});
  EXPECT_THROW(sink.add_row({"only"}), ContractViolation);
  std::remove(path.c_str());
}

TEST(JsonEscape, EscapesSpecials) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonSink, WritesDocumentWithMetaSectionsRows) {
  const std::string path = ::testing::TempDir() + "exp_sink.json";
  {
    JsonSink sink(path, "unit_bench");
    sink.set_meta("note", "he said \"hi\"");
    sink.set_meta_number("rounds", 500);
    sink.begin_section("s1", {"x", "y"});
    sink.add_row({"1", "2"});
    sink.begin_section("s2", {"z"});
    sink.finish();
  }
  const std::string text = slurp(path);
  EXPECT_NE(text.find("\"bench\": \"unit_bench\""), std::string::npos);
  EXPECT_NE(text.find("\"note\": \"he said \\\"hi\\\"\""), std::string::npos);
  EXPECT_NE(text.find("\"rounds\": 500"), std::string::npos);
  EXPECT_NE(text.find("\"name\": \"s1\""), std::string::npos);
  EXPECT_NE(text.find("[\"1\", \"2\"]"), std::string::npos);
  EXPECT_NE(text.find("\"name\": \"s2\""), std::string::npos);
  // Balanced braces/brackets — a cheap structural sanity check.
  EXPECT_EQ(std::count(text.begin(), text.end(), '{'),
            std::count(text.begin(), text.end(), '}'));
  EXPECT_EQ(std::count(text.begin(), text.end(), '['),
            std::count(text.begin(), text.end(), ']'));
  std::remove(path.c_str());
}

TEST(BenchOptions, ParsesUniformFlags) {
  const char* argv[] = {"prog", "--threads=3", "--csv=out.csv",
                        "--json", "out.json"};
  CliArgs args(5, argv);
  const BenchOptions options = parse_bench_options(args);
  EXPECT_EQ(options.threads, 3u);
  EXPECT_EQ(options.csv_path, "out.csv");
  EXPECT_EQ(options.json_path, "out.json");
  args.reject_unconsumed();
}

TEST(BenchOptions, RejectsBarePathFlags) {
  const char* argv[] = {"prog", "--csv"};
  CliArgs args(2, argv);
  EXPECT_THROW((void)parse_bench_options(args), std::runtime_error);
}

TEST(BenchOptions, RejectsThreadsBeyondUnsignedRange) {
  // 2^32 would wrap to 0 (= auto) through the unsigned cast.
  const char* argv[] = {"prog", "--threads=4294967296"};
  CliArgs args(2, argv);
  EXPECT_THROW((void)parse_bench_options(args), std::runtime_error);
}

TEST(SinkSet, FansOutToAllSinks) {
  const std::string csv_path = ::testing::TempDir() + "exp_set.csv";
  const std::string json_path = ::testing::TempDir() + "exp_set.json";
  auto os = std::make_unique<std::ostringstream>();
  std::ostringstream& table_out = *os;
  {
    SinkSet set;
    struct Holder final : ResultSink {  // keep the stream alive in the set
      explicit Holder(std::unique_ptr<std::ostringstream> s)
          : stream(std::move(s)), sink(*stream) {}
      void begin_section(const std::string& n,
                         const std::vector<std::string>& h) override {
        sink.begin_section(n, h);
      }
      void add_row(const std::vector<std::string>& c) override {
        sink.add_row(c);
      }
      void finish() override { sink.finish(); }
      std::unique_ptr<std::ostringstream> stream;
      TableSink sink;
    };
    set.add(std::make_unique<Holder>(std::move(os)));
    set.add(std::make_unique<CsvSink>(csv_path));
    set.add(std::make_unique<JsonSink>(json_path, "fanout"));
    EXPECT_EQ(set.sink_count(), 3u);
    set.begin_section("s", {"a"});
    set.add_row({"42"});
    set.finish();
    EXPECT_NE(table_out.str().find("42"), std::string::npos);
  }
  EXPECT_NE(slurp(csv_path).find("s,42"), std::string::npos);
  EXPECT_NE(slurp(json_path).find("\"42\""), std::string::npos);
  std::remove(csv_path.c_str());
  std::remove(json_path.c_str());
}

}  // namespace
}  // namespace neatbound::exp
