#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "exp/adaptive.hpp"
#include "exp/grid.hpp"
#include "sim/runner.hpp"

namespace neatbound::exp {
namespace {

sim::ExperimentConfig cell_config(double nu, double p,
                                  sim::AdversaryKind kind,
                                  std::uint32_t seeds) {
  sim::ExperimentConfig config;
  config.engine.miner_count = 12;
  config.engine.adversary_fraction = nu;
  config.engine.p = p;
  config.engine.delta = 2;
  config.engine.rounds = 700;
  config.adversary = kind;
  config.seeds = seeds;
  config.base_seed = 9000;
  return config;
}

void expect_identical(const sim::ExperimentSummary& a,
                      const sim::ExperimentSummary& b) {
  EXPECT_EQ(a.violation_depth.count(), b.violation_depth.count());
  EXPECT_DOUBLE_EQ(a.convergence_opportunities.mean(),
                   b.convergence_opportunities.mean());
  EXPECT_DOUBLE_EQ(a.adversary_blocks.mean(), b.adversary_blocks.mean());
  EXPECT_DOUBLE_EQ(a.honest_blocks.variance(), b.honest_blocks.variance());
  EXPECT_DOUBLE_EQ(a.violation_depth.max(), b.violation_depth.max());
  EXPECT_DOUBLE_EQ(a.max_reorg_depth.mean(), b.max_reorg_depth.mean());
  EXPECT_DOUBLE_EQ(a.chain_growth.mean(), b.chain_growth.mean());
  EXPECT_DOUBLE_EQ(a.chain_quality.mean(), b.chain_quality.mean());
  EXPECT_DOUBLE_EQ(a.violation_exceeds_t.mean(),
                   b.violation_exceeds_t.mean());
}

SweepGrid two_by_two() {
  SweepGrid grid;
  grid.axis("nu", {0.2, 0.35});
  grid.axis("p", {0.01, 0.03});
  return grid;
}

ConfigBuilder builder(std::uint32_t seeds) {
  return [seeds](const GridPoint& point) {
    return cell_config(point.value("nu"), point.value("p"),
                       sim::AdversaryKind::kPrivateWithhold, seeds);
  };
}

/// The degenerate schedule (min = batch = max, no early stopping) is the
/// plain fixed-budget sweep, bit for bit — the property that lets the
/// checkpoint path host non-adaptive runs.
TEST(AdaptiveSweep, FixedBudgetDegenerateMatchesPlainSweep) {
  const SweepGrid grid = two_by_two();
  AdaptiveOptions adaptive;
  adaptive.min_seeds = adaptive.batch = adaptive.max_seeds = 3;
  adaptive.half_width = 0.0;

  const auto plain =
      run_sweep(grid, builder(3), {.violation_t = 5, .threads = 2});
  const auto result = run_sweep_adaptive(
      grid, builder(3), {.violation_t = 5, .threads = 2}, adaptive);

  ASSERT_EQ(result.cells.size(), plain.size());
  EXPECT_EQ(result.waves, 1u);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.engine_runs, 4u * 3u);
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(result.cells[i].seeds_used, 3u);
    EXPECT_FALSE(result.cells[i].stopped_early);
    expect_identical(result.cells[i].cell.summary, plain[i].summary);
  }
}

/// The truncation identity: a cell that stopped after m seeds carries
/// exactly the summary a fixed budget of m seeds produces.  (The result
/// cell's config.seeds is rewritten to m, so run_experiment on it IS the
/// fixed-budget run.)
TEST(AdaptiveSweep, StoppedCellBitIdenticalToTruncatedFixedBudget) {
  const SweepGrid grid = two_by_two();
  AdaptiveOptions adaptive;
  adaptive.min_seeds = 2;
  adaptive.batch = 2;
  adaptive.max_seeds = 10;
  adaptive.half_width = 0.35;  // loose target: some cells stop early

  const auto result = run_sweep_adaptive(
      grid, builder(10), {.violation_t = 5, .threads = 4}, adaptive);

  bool some_stopped_early = false;
  for (const AdaptiveCell& cell : result.cells) {
    ASSERT_GE(cell.seeds_used, adaptive.min_seeds);
    ASSERT_LE(cell.seeds_used, adaptive.max_seeds);
    some_stopped_early |= cell.stopped_early;
    EXPECT_EQ(cell.cell.config.seeds, cell.seeds_used);
    expect_identical(sim::run_experiment(cell.cell.config, 5),
                     cell.cell.summary);
    // The Wilson interval matches the recorded violation count.
    const auto ci =
        stats::wilson_interval(cell.violations, cell.seeds_used,
                               stats::z_for_confidence(0.95));
    EXPECT_DOUBLE_EQ(cell.ci.lo, ci.lo);
    EXPECT_DOUBLE_EQ(cell.ci.hi, ci.hi);
  }
  EXPECT_TRUE(some_stopped_early);
}

TEST(AdaptiveSweep, SerialAndParallelBitIdentical) {
  const SweepGrid grid = two_by_two();
  AdaptiveOptions adaptive;
  adaptive.min_seeds = 2;
  adaptive.batch = 3;
  adaptive.max_seeds = 8;
  adaptive.half_width = 0.3;

  const auto serial = run_sweep_adaptive(
      grid, builder(8), {.violation_t = 5, .threads = 1}, adaptive);
  const auto pooled = run_sweep_adaptive(
      grid, builder(8), {.violation_t = 5, .threads = 4}, adaptive);

  ASSERT_EQ(serial.cells.size(), pooled.cells.size());
  EXPECT_EQ(serial.engine_runs, pooled.engine_runs);
  EXPECT_EQ(serial.waves, pooled.waves);
  for (std::size_t i = 0; i < serial.cells.size(); ++i) {
    EXPECT_EQ(serial.cells[i].seeds_used, pooled.cells[i].seeds_used);
    EXPECT_EQ(serial.cells[i].violations, pooled.cells[i].violations);
    EXPECT_EQ(serial.cells[i].stopped_early, pooled.cells[i].stopped_early);
    expect_identical(serial.cells[i].cell.summary,
                     pooled.cells[i].cell.summary);
  }
}

/// Tightening the half-width target never schedules fewer seeds: the
/// stopping decision is monotone in the target.
TEST(AdaptiveSweep, SeedsUsedMonotoneInHalfWidthTarget) {
  SweepGrid grid;
  grid.axis("nu", {0.35});
  grid.axis("p", {0.03});
  std::uint32_t previous = 0;
  for (const double target : {0.5, 0.35, 0.2, 0.1, 0.0}) {
    AdaptiveOptions adaptive;
    adaptive.min_seeds = 2;
    adaptive.batch = 2;
    adaptive.max_seeds = 12;
    adaptive.half_width = target;  // 0.0 = never stop early → max budget
    const auto result = run_sweep_adaptive(
        grid, builder(12), {.violation_t = 5, .threads = 2}, adaptive);
    ASSERT_EQ(result.cells.size(), 1u);
    EXPECT_GE(result.cells[0].seeds_used, previous);
    previous = result.cells[0].seeds_used;
  }
  EXPECT_EQ(previous, 12u);  // target 0 ran the whole budget
}

TEST(AdaptiveSweep, RejectsBadOptions) {
  SweepGrid grid;
  grid.axis("nu", {0.2});
  AdaptiveOptions bad;
  bad.min_seeds = 5;
  bad.max_seeds = 3;
  EXPECT_ANY_THROW((void)run_sweep_adaptive(
      grid, builder(3), {.violation_t = 5, .threads = 1}, bad));
  bad = {};
  bad.batch = 0;
  EXPECT_ANY_THROW((void)run_sweep_adaptive(
      grid, builder(3), {.violation_t = 5, .threads = 1}, bad));
  bad = {};
  bad.confidence = 1.0;
  EXPECT_ANY_THROW((void)run_sweep_adaptive(
      grid, builder(3), {.violation_t = 5, .threads = 1}, bad));
}

SweepGrid frontier_grid() {
  SweepGrid grid;
  grid.axis("nu", {0.35});
  grid.axis("p", {0.002, 0.06});  // quiet → violent violation estimates
  return grid;
}

TEST(Frontier, LocalizesACrossingToTolerance) {
  AdaptiveOptions adaptive;
  adaptive.min_seeds = 3;
  adaptive.batch = 3;
  adaptive.max_seeds = 6;
  adaptive.half_width = 0.0;
  FrontierOptions frontier;
  frontier.axis = "p";
  frontier.threshold = 0.5;
  frontier.tolerance = 0.01;

  const FrontierResult result = localize_frontier(
      frontier_grid(), builder(6), {.violation_t = 4, .threads = 4},
      adaptive, frontier);

  ASSERT_EQ(result.rows.size(), 1u);
  const FrontierRow& row = result.rows[0];
  ASSERT_TRUE(row.bracketed);
  EXPECT_GE(row.lo, 0.002);
  EXPECT_LE(row.hi, 0.06);
  EXPECT_LE(row.hi - row.lo, frontier.tolerance);
  // The bracket ends still classify to opposite sides of the threshold.
  EXPECT_NE(row.estimate_lo >= frontier.threshold,
            row.estimate_hi >= frontier.threshold);
  EXPECT_GT(row.refine_runs, 0u);
  EXPECT_EQ(result.engine_runs,
            result.coarse.engine_runs + row.refine_runs);
  // The whole point: cheaper than the dense grid at the same resolution.
  EXPECT_LT(result.engine_runs, result.dense_equivalent_runs);
}

TEST(Frontier, DeterministicAcrossThreadCounts) {
  AdaptiveOptions adaptive;
  adaptive.min_seeds = 3;
  adaptive.batch = 3;
  adaptive.max_seeds = 3;
  adaptive.half_width = 0.0;
  FrontierOptions frontier;
  frontier.axis = "p";
  frontier.threshold = 0.5;
  frontier.tolerance = 0.02;

  const FrontierResult serial = localize_frontier(
      frontier_grid(), builder(3), {.violation_t = 4, .threads = 1},
      adaptive, frontier);
  const FrontierResult pooled = localize_frontier(
      frontier_grid(), builder(3), {.violation_t = 4, .threads = 4},
      adaptive, frontier);
  ASSERT_EQ(serial.rows.size(), pooled.rows.size());
  EXPECT_EQ(serial.engine_runs, pooled.engine_runs);
  for (std::size_t i = 0; i < serial.rows.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial.rows[i].lo, pooled.rows[i].lo);
    EXPECT_DOUBLE_EQ(serial.rows[i].hi, pooled.rows[i].hi);
    EXPECT_DOUBLE_EQ(serial.rows[i].estimate_lo, pooled.rows[i].estimate_lo);
    EXPECT_DOUBLE_EQ(serial.rows[i].estimate_hi, pooled.rows[i].estimate_hi);
  }
}

TEST(Frontier, NoCrossingReportsUnbracketedRow) {
  AdaptiveOptions adaptive;
  adaptive.min_seeds = 2;
  adaptive.batch = 2;
  adaptive.max_seeds = 2;
  adaptive.half_width = 0.0;
  FrontierOptions frontier;
  frontier.axis = "p";
  frontier.threshold = 1.5;  // phat can never reach it
  frontier.tolerance = 0.02;

  const FrontierResult result = localize_frontier(
      frontier_grid(), builder(2), {.violation_t = 4, .threads = 2},
      adaptive, frontier);
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_FALSE(result.rows[0].bracketed);
  EXPECT_EQ(result.rows[0].refine_runs, 0u);
  EXPECT_EQ(result.engine_runs, result.coarse.engine_runs);
}

TEST(Frontier, RejectsUnknownAxisAndBadTolerance) {
  AdaptiveOptions adaptive;
  adaptive.min_seeds = adaptive.batch = adaptive.max_seeds = 2;
  adaptive.half_width = 0.0;
  FrontierOptions frontier;
  frontier.axis = "missing";
  EXPECT_THROW((void)localize_frontier(frontier_grid(), builder(2),
                                       {.violation_t = 4, .threads = 1},
                                       adaptive, frontier),
               std::invalid_argument);
  // std::string move-assign sidesteps a GCC 12 -Wrestrict false positive
  // on const char* reassignment (same workaround as markov/chain.cpp).
  frontier.axis = std::string("p");
  frontier.tolerance = 0.0;
  EXPECT_THROW((void)localize_frontier(frontier_grid(), builder(2),
                                       {.violation_t = 4, .threads = 1},
                                       adaptive, frontier),
               std::invalid_argument);
}

}  // namespace
}  // namespace neatbound::exp
