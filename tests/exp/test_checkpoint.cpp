#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>

#include "exp/adaptive.hpp"
#include "exp/checkpoint.hpp"
#include "sim/runner.hpp"

namespace neatbound::exp {
namespace {

/// Unique per-test checkpoint path under the system temp dir, removed on
/// destruction.
class TempFile {
 public:
  explicit TempFile(const std::string& stem)
      : path_((std::filesystem::temp_directory_path() /
               ("neatbound_" + stem + "_" +
                std::to_string(::testing::UnitTest::GetInstance()
                                   ->random_seed()) +
                ".json"))
                  .string()) {
    std::filesystem::remove(path_);
  }
  ~TempFile() {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
    std::filesystem::remove(path_ + ".tmp", ec);
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

bool bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

void expect_state_bits(const stats::RunningStats& a,
                       const stats::RunningStats& b) {
  const auto sa = a.state();
  const auto sb = b.state();
  EXPECT_EQ(sa.count, sb.count);
  EXPECT_TRUE(bits_equal(sa.mean, sb.mean));
  EXPECT_TRUE(bits_equal(sa.m2, sb.m2));
  EXPECT_TRUE(bits_equal(sa.min, sb.min));
  EXPECT_TRUE(bits_equal(sa.max, sb.max));
}

TEST(ExactDoubleRepr, RoundTripsThroughStrtod) {
  for (const double value :
       {0.1, 1.0 / 3.0, 2.0 / 7.0, 1e-300, 1.7976931348623157e308,
        -0.3333333333333333, 123456.789012345678, 5e-324}) {
    const std::string repr = exact_double_repr(value);
    EXPECT_TRUE(bits_equal(std::strtod(repr.c_str(), nullptr), value))
        << repr;
  }
}

TEST(Checkpoint, SaveLoadRoundTripsAccumulatorsBitExactly) {
  TempFile file("roundtrip");
  SweepCheckpoint out;
  out.fingerprint = 0xdeadbeefcafef00dULL;
  out.waves_done = 7;
  for (int c = 0; c < 3; ++c) {
    CellCheckpoint cell;
    cell.seeds_done = 5 + static_cast<std::uint32_t>(c);
    cell.violations = static_cast<std::uint64_t>(c);
    cell.stopped = c == 1;
    cell.stopped_early = c == 1;
    // Irrational-ish streams so mean/m2 exercise the full mantissa.
    for (int i = 1; i <= 9 + c; ++i) {
      cell.summary.violation_depth.add(1.0 / i + c);
      cell.summary.chain_growth.add(0.1234567890123 * i);
      cell.summary.chain_quality.add(i % 2 ? 1.0 / 3 : 2.0 / 7);
    }
    out.cells.push_back(std::move(cell));
  }
  save_sweep_checkpoint(file.path(), out);

  const SweepCheckpoint in =
      load_sweep_checkpoint(file.path(), out.fingerprint);
  EXPECT_EQ(in.fingerprint, out.fingerprint);
  EXPECT_EQ(in.waves_done, out.waves_done);
  ASSERT_EQ(in.cells.size(), out.cells.size());
  for (std::size_t c = 0; c < in.cells.size(); ++c) {
    EXPECT_EQ(in.cells[c].seeds_done, out.cells[c].seeds_done);
    EXPECT_EQ(in.cells[c].violations, out.cells[c].violations);
    EXPECT_EQ(in.cells[c].stopped, out.cells[c].stopped);
    EXPECT_EQ(in.cells[c].stopped_early, out.cells[c].stopped_early);
    expect_state_bits(in.cells[c].summary.violation_depth,
                      out.cells[c].summary.violation_depth);
    expect_state_bits(in.cells[c].summary.chain_growth,
                      out.cells[c].summary.chain_growth);
    expect_state_bits(in.cells[c].summary.chain_quality,
                      out.cells[c].summary.chain_quality);
    // Untouched fields stay empty.
    EXPECT_EQ(in.cells[c].summary.honest_blocks.count(), 0u);
  }
  // Atomic-by-rename: no temp file left behind.
  EXPECT_FALSE(std::filesystem::exists(file.path() + ".tmp"));
}

TEST(Checkpoint, SaveOverwritesExistingFile) {
  TempFile file("overwrite");
  SweepCheckpoint first;
  first.fingerprint = 1;
  first.cells.emplace_back();
  save_sweep_checkpoint(file.path(), first);
  SweepCheckpoint second;
  second.fingerprint = 2;
  second.waves_done = 3;
  second.cells.emplace_back();
  second.cells.emplace_back();
  save_sweep_checkpoint(file.path(), second);
  const SweepCheckpoint in = load_sweep_checkpoint(file.path());
  EXPECT_EQ(in.fingerprint, 2u);
  EXPECT_EQ(in.cells.size(), 2u);
}

TEST(Checkpoint, FingerprintMismatchAndMalformedFilesThrow) {
  TempFile file("mismatch");
  SweepCheckpoint out;
  out.fingerprint = 42;
  out.cells.emplace_back();
  save_sweep_checkpoint(file.path(), out);
  EXPECT_NO_THROW((void)load_sweep_checkpoint(file.path(), 42));
  EXPECT_THROW((void)load_sweep_checkpoint(file.path(), 43),
               std::runtime_error);

  std::ofstream(file.path(), std::ios::trunc) << "{\"format\": \"other\"}";
  EXPECT_THROW((void)load_sweep_checkpoint(file.path()),
               std::runtime_error);
  std::ofstream(file.path(), std::ios::trunc) << "{ not json";
  EXPECT_THROW((void)load_sweep_checkpoint(file.path()),
               std::runtime_error);
  EXPECT_THROW((void)load_sweep_checkpoint(file.path() + ".does-not-exist"),
               std::runtime_error);
}

// ---------------------------------------------------------------------
// Resume through the adaptive sweep itself.

sim::ExperimentConfig cell_config(double nu, double p) {
  sim::ExperimentConfig config;
  config.engine.miner_count = 12;
  config.engine.adversary_fraction = nu;
  config.engine.p = p;
  config.engine.delta = 2;
  config.engine.rounds = 600;
  config.adversary = sim::AdversaryKind::kPrivateWithhold;
  config.seeds = 9;
  config.base_seed = 9000;
  return config;
}

SweepGrid small_grid() {
  SweepGrid grid;
  grid.axis("nu", {0.2, 0.35});
  return grid;
}

ConfigBuilder small_builder() {
  return [](const GridPoint& point) {
    return cell_config(point.value("nu"), 0.03);
  };
}

AdaptiveOptions schedule() {
  AdaptiveOptions adaptive;
  adaptive.min_seeds = 3;
  adaptive.batch = 3;
  adaptive.max_seeds = 9;
  adaptive.half_width = 0.0;  // 3 waves for every cell
  return adaptive;
}

void expect_identical_cells(const AdaptiveSweepResult& a,
                            const AdaptiveSweepResult& b) {
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_EQ(a.cells[i].seeds_used, b.cells[i].seeds_used);
    EXPECT_EQ(a.cells[i].violations, b.cells[i].violations);
    expect_state_bits(a.cells[i].cell.summary.violation_depth,
                      b.cells[i].cell.summary.violation_depth);
    expect_state_bits(a.cells[i].cell.summary.chain_growth,
                      b.cells[i].cell.summary.chain_growth);
    expect_state_bits(a.cells[i].cell.summary.chain_quality,
                      b.cells[i].cell.summary.chain_quality);
    expect_state_bits(a.cells[i].cell.summary.honest_blocks,
                      b.cells[i].cell.summary.honest_blocks);
    expect_state_bits(a.cells[i].cell.summary.violation_exceeds_t,
                      b.cells[i].cell.summary.violation_exceeds_t);
  }
}

/// The acceptance property: interrupt after wave 1, resume, and the
/// final result is bit-identical to an uninterrupted run.
TEST(Checkpoint, InterruptedThenResumedSweepBitIdenticalToUninterrupted) {
  const SweepOptions options{.violation_t = 4, .threads = 4};
  const AdaptiveSweepResult uninterrupted =
      run_sweep_adaptive(small_grid(), small_builder(), options, schedule());
  ASSERT_TRUE(uninterrupted.complete);
  EXPECT_EQ(uninterrupted.waves, 3u);

  TempFile file("resume");
  AdaptiveOptions interrupted_schedule = schedule();
  interrupted_schedule.checkpoint_path = file.path();
  interrupted_schedule.stop_after_waves = 1;
  const AdaptiveSweepResult partial = run_sweep_adaptive(
      small_grid(), small_builder(), options, interrupted_schedule);
  EXPECT_FALSE(partial.complete);
  EXPECT_EQ(partial.waves, 1u);
  ASSERT_TRUE(std::filesystem::exists(file.path()));

  AdaptiveOptions resume_schedule = schedule();
  resume_schedule.checkpoint_path = file.path();
  resume_schedule.resume = true;
  const AdaptiveSweepResult resumed = run_sweep_adaptive(
      small_grid(), small_builder(), options, resume_schedule);
  EXPECT_TRUE(resumed.complete);
  EXPECT_EQ(resumed.waves, 3u);  // 1 restored + 2 run here
  EXPECT_EQ(resumed.engine_runs, uninterrupted.engine_runs);
  expect_identical_cells(resumed, uninterrupted);
}

/// Resuming a finished checkpoint schedules nothing and reproduces the
/// result (idempotent restarts).
TEST(Checkpoint, ResumingACompletedSweepRunsNoWaves) {
  TempFile file("complete");
  const SweepOptions options{.violation_t = 4, .threads = 2};
  AdaptiveOptions with_checkpoint = schedule();
  with_checkpoint.checkpoint_path = file.path();
  const AdaptiveSweepResult first = run_sweep_adaptive(
      small_grid(), small_builder(), options, with_checkpoint);
  ASSERT_TRUE(first.complete);

  AdaptiveOptions resume_schedule = with_checkpoint;
  resume_schedule.resume = true;
  const AdaptiveSweepResult again = run_sweep_adaptive(
      small_grid(), small_builder(), options, resume_schedule);
  EXPECT_TRUE(again.complete);
  EXPECT_EQ(again.waves, first.waves);
  expect_identical_cells(again, first);
}

/// A checkpoint written by a different sweep (other grid values) must be
/// rejected, not silently resumed.
TEST(Checkpoint, ResumeRejectsCheckpointFromDifferentSweep) {
  TempFile file("fingerprint");
  const SweepOptions options{.violation_t = 4, .threads = 2};
  AdaptiveOptions with_checkpoint = schedule();
  with_checkpoint.checkpoint_path = file.path();
  (void)run_sweep_adaptive(small_grid(), small_builder(), options,
                           with_checkpoint);

  SweepGrid other;
  other.axis("nu", {0.2, 0.4});  // different axis values
  AdaptiveOptions resume_schedule = with_checkpoint;
  resume_schedule.resume = true;
  EXPECT_THROW((void)run_sweep_adaptive(other, small_builder(), options,
                                        resume_schedule),
               std::runtime_error);
}

/// resume with a missing file starts fresh instead of failing, so first
/// runs and restarts share one invocation.
TEST(Checkpoint, ResumeWithMissingFileStartsFresh) {
  TempFile file("fresh");
  const SweepOptions options{.violation_t = 4, .threads = 2};
  AdaptiveOptions resume_schedule = schedule();
  resume_schedule.checkpoint_path = file.path();
  resume_schedule.resume = true;
  const AdaptiveSweepResult result = run_sweep_adaptive(
      small_grid(), small_builder(), options, resume_schedule);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.waves, 3u);
  EXPECT_TRUE(std::filesystem::exists(file.path()));
}

}  // namespace
}  // namespace neatbound::exp
