#include "scenario/spec.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace neatbound::scenario {
namespace {

constexpr const char* kFullSpec = R"({
  "name": "demo",
  "title": "a demo",
  "engine": {"miners": 24, "nu": 0.2, "delta": 4, "rounds": 5000, "p": 0.003},
  "axes": [
    {"name": "nu", "values": [0.1, 0.3]},
    {"name": "multiple", "values": [0.5, 1.0, 2.0]}
  ],
  "hardness": {"mode": "neat-bound-multiple"},
  "seeds": 3,
  "base_seed": 99,
  "violation_t": 6,
  "adversary": {"strategy": "private-withhold", "min_fork_depth": 3},
  "network": {"model": "bursty", "period": 10},
  "report": {
    "section_by": "nu",
    "section_label": "nu = {nu:2}",
    "columns": [{"header": "nu", "value": "nu", "decimals": 2},
                {"value": "violation_depth.mean"}]
  },
  "meta": {"extra": 7}
})";

TEST(Spec, ParsesEveryField) {
  const ScenarioSpec spec = parse_scenario(kFullSpec);
  EXPECT_EQ(spec.name, "demo");
  EXPECT_EQ(spec.title, "a demo");
  EXPECT_EQ(spec.miners, 24u);
  EXPECT_DOUBLE_EQ(spec.nu, 0.2);
  EXPECT_EQ(spec.delta, 4u);
  EXPECT_EQ(spec.rounds, 5000u);
  EXPECT_DOUBLE_EQ(spec.p, 0.003);
  EXPECT_EQ(spec.hardness_mode, "neat-bound-multiple");
  EXPECT_EQ(spec.seeds, 3u);
  EXPECT_EQ(spec.base_seed, 99u);
  EXPECT_EQ(spec.violation_t, 6u);
  EXPECT_EQ(spec.adversary.kind, "private-withhold");
  EXPECT_EQ(spec.adversary.params.get_uint("min_fork_depth", 0), 3u);
  EXPECT_EQ(spec.network.kind, "bursty");
  EXPECT_EQ(spec.network.params.get_uint("period", 0), 10u);
  ASSERT_EQ(spec.axes.size(), 2u);
  EXPECT_EQ(spec.axes[0].name, "nu");
  EXPECT_EQ(spec.axes[1].values.size(), 3u);
  EXPECT_EQ(spec.grid_size(), 6u);
  EXPECT_TRUE(spec.has_axis("multiple"));
  EXPECT_FALSE(spec.has_axis("delta"));
  EXPECT_EQ(spec.report.section_by, "nu");
  ASSERT_EQ(spec.report.columns.size(), 2u);
  EXPECT_EQ(spec.report.columns[0].decimals, 2);
  // header defaults to the value expression; decimals default to 3.
  EXPECT_EQ(spec.report.columns[1].header, "violation_depth.mean");
  EXPECT_EQ(spec.report.columns[1].decimals, 3);
  ASSERT_EQ(spec.extra_meta.size(), 1u);
  EXPECT_EQ(spec.extra_meta[0].first, "extra");
}

TEST(Spec, MinimalSpecGetsDefaults) {
  const ScenarioSpec spec = parse_scenario(R"({"name": "tiny"})");
  EXPECT_EQ(spec.name, "tiny");
  EXPECT_EQ(spec.adversary.kind, "max-delay");
  EXPECT_EQ(spec.network.kind, "strategy");
  EXPECT_EQ(spec.hardness_mode, "fixed");
  EXPECT_EQ(spec.grid_size(), 1u);
  EXPECT_TRUE(spec.report.columns.empty());
}

TEST(Spec, RejectsUnknownKeysEverywhere) {
  EXPECT_THROW((void)parse_scenario(R"({"name": "x", "typo": 1})"),
               std::runtime_error);
  EXPECT_THROW(
      (void)parse_scenario(R"({"name": "x", "engine": {"minres": 8}})"),
      std::runtime_error);
  EXPECT_THROW((void)parse_scenario(
                   R"({"name": "x", "report": {"sectionby": "nu"}})"),
               std::runtime_error);
  EXPECT_THROW(
      (void)parse_scenario(
          R"({"name": "x", "axes": [{"name": "a", "values": [1], "step": 2}]})"),
      std::runtime_error);
}

TEST(Spec, RejectsStructuralMistakes) {
  // name is required and non-empty
  EXPECT_THROW((void)parse_scenario(R"({})"), std::runtime_error);
  EXPECT_THROW((void)parse_scenario(R"({"name": ""})"), std::runtime_error);
  // empty axis values
  EXPECT_THROW(
      (void)parse_scenario(
          R"({"name": "x", "axes": [{"name": "a", "values": []}]})"),
      std::runtime_error);
  // duplicate axis
  EXPECT_THROW((void)parse_scenario(
                   R"({"name": "x", "axes": [
                       {"name": "a", "values": [1]},
                       {"name": "a", "values": [2]}]})"),
               std::runtime_error);
  // zero seeds
  EXPECT_THROW((void)parse_scenario(R"({"name": "x", "seeds": 0})"),
               std::runtime_error);
  // unknown hardness mode
  EXPECT_THROW(
      (void)parse_scenario(R"({"name": "x", "hardness": {"mode": "??"}})"),
      std::runtime_error);
  // hardness mode "c" without a source for c
  EXPECT_THROW(
      (void)parse_scenario(R"({"name": "x", "hardness": {"mode": "c"}})"),
      std::runtime_error);
  // section_by must be an axis and needs a label
  EXPECT_THROW((void)parse_scenario(
                   R"({"name": "x", "report": {"section_by": "nu",
                       "section_label": "nu = {nu}"}})"),
               std::runtime_error);
  EXPECT_THROW(
      (void)parse_scenario(
          R"({"name": "x", "axes": [{"name": "nu", "values": [0.1]}],
              "report": {"section_by": "nu"}})"),
      std::runtime_error);
}

TEST(Spec, ParsesAdaptiveBlock) {
  const ScenarioSpec spec = parse_scenario(R"({
    "name": "x",
    "adaptive": {"min_seeds": 2, "batch": 5, "max_seeds": 40,
                 "half_width": 0.02, "confidence": 0.99}
  })");
  ASSERT_TRUE(spec.adaptive.has_value());
  EXPECT_EQ(spec.adaptive->min_seeds, 2u);
  EXPECT_EQ(spec.adaptive->batch, 5u);
  EXPECT_EQ(spec.adaptive->max_seeds, 40u);
  EXPECT_DOUBLE_EQ(spec.adaptive->half_width, 0.02);
  EXPECT_DOUBLE_EQ(spec.adaptive->confidence, 0.99);

  // Defaults apply per key; absence of the block means no adaptivity.
  const ScenarioSpec defaults =
      parse_scenario(R"({"name": "x", "adaptive": {}})");
  ASSERT_TRUE(defaults.adaptive.has_value());
  EXPECT_EQ(defaults.adaptive->min_seeds, 4u);
  EXPECT_EQ(defaults.adaptive->max_seeds, 64u);
  EXPECT_DOUBLE_EQ(defaults.adaptive->half_width, 0.05);
  EXPECT_FALSE(parse_scenario(R"({"name": "x"})").adaptive.has_value());
}

TEST(Spec, RejectsBadAdaptiveBlocks) {
  // unknown key
  EXPECT_THROW((void)parse_scenario(
                   R"({"name": "x", "adaptive": {"min_seed": 2}})"),
               std::runtime_error);
  // zero min_seeds / batch
  EXPECT_THROW((void)parse_scenario(
                   R"({"name": "x", "adaptive": {"min_seeds": 0}})"),
               std::runtime_error);
  EXPECT_THROW(
      (void)parse_scenario(R"({"name": "x", "adaptive": {"batch": 0}})"),
      std::runtime_error);
  // max below min
  EXPECT_THROW((void)parse_scenario(
                   R"({"name": "x",
                       "adaptive": {"min_seeds": 8, "max_seeds": 4}})"),
               std::runtime_error);
  // negative half-width, confidence outside (0,1)
  EXPECT_THROW((void)parse_scenario(
                   R"({"name": "x", "adaptive": {"half_width": -0.1}})"),
               std::runtime_error);
  EXPECT_THROW((void)parse_scenario(
                   R"({"name": "x", "adaptive": {"confidence": 1.0}})"),
               std::runtime_error);
  EXPECT_THROW((void)parse_scenario(
                   R"({"name": "x", "adaptive": {"confidence": 0.0}})"),
               std::runtime_error);
}

TEST(Spec, ParsesOracleBlock) {
  const ScenarioSpec spec = parse_scenario(R"({
    "name": "x",
    "oracle": {
      "invariants": ["common-prefix", "chain-quality"],
      "common_prefix_t": 5,
      "quality_window": 32,
      "quality_min_ratio": 0.25,
      "slice_rounds": 16,
      "max_runs": 100
    }
  })");
  ASSERT_TRUE(spec.oracle.has_value());
  EXPECT_EQ(spec.oracle->invariants,
            (std::vector<std::string>{"common-prefix", "chain-quality"}));
  ASSERT_TRUE(spec.oracle->common_prefix_t.has_value());
  EXPECT_EQ(*spec.oracle->common_prefix_t, 5u);
  EXPECT_EQ(spec.oracle->quality_window, 32u);
  EXPECT_DOUBLE_EQ(spec.oracle->quality_min_ratio, 0.25);
  EXPECT_EQ(spec.oracle->slice_rounds, 16u);
  EXPECT_EQ(spec.oracle->max_runs, 100u);

  // Absent block: no oracle configured, T defaults happen downstream.
  EXPECT_FALSE(parse_scenario(R"({"name": "x"})").oracle.has_value());
  const ScenarioSpec defaults =
      parse_scenario(R"({"name": "x", "oracle": {}})");
  ASSERT_TRUE(defaults.oracle.has_value());
  EXPECT_EQ(defaults.oracle->invariants,
            (std::vector<std::string>{"common-prefix"}));
  EXPECT_FALSE(defaults.oracle->common_prefix_t.has_value());
}

TEST(Spec, RejectsBadOracleBlocks) {
  // Unknown invariant name, duplicates, empty list.
  EXPECT_THROW((void)parse_scenario(
                   R"({"name": "x", "oracle": {"invariants": ["nope"]}})"),
               std::runtime_error);
  EXPECT_THROW(
      (void)parse_scenario(R"({"name": "x", "oracle":
          {"invariants": ["common-prefix", "common-prefix"]}})"),
      std::runtime_error);
  EXPECT_THROW((void)parse_scenario(
                   R"({"name": "x", "oracle": {"invariants": []}})"),
               std::runtime_error);
  // Unknown key inside the block.
  EXPECT_THROW((void)parse_scenario(
                   R"({"name": "x", "oracle": {"slices": 4}})"),
               std::runtime_error);
  // Out-of-range window/ratio/slice parameters.
  EXPECT_THROW((void)parse_scenario(
                   R"({"name": "x", "oracle": {"growth_window": 0}})"),
               std::runtime_error);
  EXPECT_THROW(
      (void)parse_scenario(
          R"({"name": "x", "oracle": {"quality_min_ratio": 1.5}})"),
      std::runtime_error);
  EXPECT_THROW((void)parse_scenario(
                   R"({"name": "x", "oracle": {"slice_rounds": 0}})"),
               std::runtime_error);
}

TEST(Spec, BundledScenariosParseAndValidate) {
  for (const char* file :
       {"adaptive_consistency.json", "balance_vs_forkbalancer.json",
        "bursty_partition.json", "consistency_sweep.json",
        "eclipse_targeting.json", "oracle_falsify.json",
        "uniform_jitter.json"}) {
    const std::string path =
        std::string(NEATBOUND_SCENARIO_DIR) + "/" + file;
    const ScenarioSpec spec = load_scenario_file(path);
    EXPECT_FALSE(spec.name.empty()) << file;
    EXPECT_GE(spec.grid_size(), 1u) << file;
  }
}

TEST(Spec, MirrorSpecMatchesBenchGrid) {
  const ScenarioSpec spec = load_scenario_file(
      std::string(NEATBOUND_SCENARIO_DIR) + "/consistency_sweep.json");
  // The values bench_consistency_sweep hard-codes.
  EXPECT_EQ(spec.name, "bench_consistency_sweep");
  EXPECT_EQ(spec.miners, 40u);
  EXPECT_EQ(spec.delta, 3u);
  EXPECT_EQ(spec.rounds, 30000u);
  EXPECT_EQ(spec.seeds, 6u);
  EXPECT_EQ(spec.base_seed, 12345u);
  EXPECT_EQ(spec.violation_t, 8u);
  ASSERT_EQ(spec.axes.size(), 2u);
  EXPECT_EQ(spec.axes[0].values,
            (std::vector<double>{0.15, 0.3, 0.4}));
  EXPECT_EQ(spec.axes[1].values,
            (std::vector<double>{0.4, 0.7, 1.0, 1.5, 2.5, 5.0, 10.0}));
}

}  // namespace
}  // namespace neatbound::scenario
