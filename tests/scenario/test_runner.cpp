#include "scenario/runner.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <stdexcept>
#include <vector>

#include "bounds/zhao.hpp"
#include "scenario/report.hpp"
#include "support/contracts.hpp"
#include "support/table.hpp"

namespace neatbound::scenario {
namespace {

/// Captures the section/row stream for assertions.
class RecordingSink final : public exp::ResultSink {
 public:
  struct Section {
    std::string name;
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
  };
  void begin_section(const std::string& name,
                     const std::vector<std::string>& headers) override {
    sections.push_back({name, headers, {}});
  }
  void add_row(const std::vector<std::string>& cells) override {
    sections.back().rows.push_back(cells);
  }
  void finish() override { finished = true; }

  std::vector<Section> sections;
  bool finished = false;
};

constexpr const char* kMiniSweep = R"json({
  "name": "mini_sweep",
  "engine": {"miners": 16, "delta": 2, "rounds": 400},
  "axes": [
    {"name": "nu", "values": [0.15, 0.3]},
    {"name": "multiple", "values": [0.5, 2.0]}
  ],
  "hardness": {"mode": "neat-bound-multiple"},
  "seeds": 2,
  "violation_t": 8,
  "adversary": {"strategy": "private-withhold"},
  "network": {"model": "strategy"},
  "report": {
    "section_by": "nu",
    "section_label": "nu = {nu:2}   (neat bound: c > {bound:3})",
    "columns": [
      {"header": "nu", "value": "nu", "decimals": 2},
      {"header": "c", "value": "c", "decimals": 3},
      {"header": "c/bound", "value": "multiple", "decimals": 2},
      {"header": "mean violation depth", "value": "violation_depth.mean",
       "decimals": 1},
      {"header": "chain quality", "value": "chain_quality.mean",
       "decimals": 3}
    ]
  }
})json";

ScenarioRunOptions with_threads(unsigned threads) {
  ScenarioRunOptions options;
  options.threads = threads;
  return options;
}

void expect_stats_equal(const stats::RunningStats& a,
                        const stats::RunningStats& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.variance(), b.variance());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
}

TEST(ScenarioRunner, BitIdenticalToHandWrittenSweep) {
  // The scenario pipeline against the exact code a hand-written bench
  // contains: same grid, same config arithmetic, same default adversary —
  // every aggregate must match bit for bit (single-threaded both sides).
  const ScenarioSpec spec = parse_scenario(kMiniSweep);
  const std::vector<exp::SweepCell> scenario_cells =
      run_scenario(spec, ScenarioRegistry::builtin(), with_threads(1));

  exp::SweepGrid grid;
  grid.axis("nu", {0.15, 0.3});
  grid.axis("multiple", {0.5, 2.0});
  const auto build = [](const exp::GridPoint& point) {
    const double nu = point.value("nu");
    const double c = bounds::neat_bound_c(nu) * point.value("multiple");
    sim::ExperimentConfig config;
    config.engine.miner_count = 16;
    config.engine.adversary_fraction = nu;
    config.engine.delta = 2;
    config.engine.p = 1.0 / (c * 16.0 * 2.0);
    config.engine.rounds = 400;
    config.adversary = sim::AdversaryKind::kPrivateWithhold;
    config.seeds = 2;
    return config;
  };
  const std::vector<exp::SweepCell> bench_cells =
      exp::run_sweep(grid, build, {.violation_t = 8, .threads = 1});

  ASSERT_EQ(scenario_cells.size(), bench_cells.size());
  for (std::size_t i = 0; i < bench_cells.size(); ++i) {
    EXPECT_EQ(scenario_cells[i].config.engine.p,
              bench_cells[i].config.engine.p)
        << "cell " << i;
    expect_stats_equal(scenario_cells[i].summary.violation_depth,
                       bench_cells[i].summary.violation_depth);
    expect_stats_equal(scenario_cells[i].summary.chain_quality,
                       bench_cells[i].summary.chain_quality);
    expect_stats_equal(scenario_cells[i].summary.violation_exceeds_t,
                       bench_cells[i].summary.violation_exceeds_t);
    expect_stats_equal(scenario_cells[i].summary.max_reorg_depth,
                       bench_cells[i].summary.max_reorg_depth);
    expect_stats_equal(scenario_cells[i].summary.honest_blocks,
                       bench_cells[i].summary.honest_blocks);
  }
}

TEST(ScenarioRunner, ParallelMatchesSerial) {
  const ScenarioSpec spec = parse_scenario(kMiniSweep);
  const auto serial =
      run_scenario(spec, ScenarioRegistry::builtin(), with_threads(1));
  const auto parallel =
      run_scenario(spec, ScenarioRegistry::builtin(), with_threads(4));
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expect_stats_equal(serial[i].summary.violation_depth,
                       parallel[i].summary.violation_depth);
    expect_stats_equal(serial[i].summary.chain_quality,
                       parallel[i].summary.chain_quality);
  }
}

TEST(ScenarioRunner, AdaptivePathWithoutBlockMatchesPlainRun) {
  // No "adaptive" block: the adaptive path resolves to the fixed-budget
  // degenerate schedule and must reproduce run_scenario bit for bit —
  // what makes --checkpoint safe on any spec.
  const ScenarioSpec spec = parse_scenario(kMiniSweep);
  const exp::AdaptiveOptions resolved = resolve_adaptive_options(spec, {});
  EXPECT_EQ(resolved.min_seeds, spec.seeds);
  EXPECT_EQ(resolved.batch, spec.seeds);
  EXPECT_EQ(resolved.max_seeds, spec.seeds);
  EXPECT_DOUBLE_EQ(resolved.half_width, 0.0);

  const auto plain =
      run_scenario(spec, ScenarioRegistry::builtin(), with_threads(2));
  const auto adaptive = run_scenario_adaptive(
      spec, ScenarioRegistry::builtin(), with_threads(2));
  ASSERT_TRUE(adaptive.complete);
  EXPECT_EQ(adaptive.waves, 1u);
  ASSERT_EQ(adaptive.cells.size(), plain.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(adaptive.cells[i].seeds_used, spec.seeds);
    EXPECT_FALSE(adaptive.cells[i].stopped_early);
    expect_stats_equal(adaptive.cells[i].cell.summary.violation_depth,
                       plain[i].summary.violation_depth);
    expect_stats_equal(adaptive.cells[i].cell.summary.chain_quality,
                       plain[i].summary.chain_quality);
    expect_stats_equal(adaptive.cells[i].cell.summary.violation_exceeds_t,
                       plain[i].summary.violation_exceeds_t);
  }
}

TEST(ScenarioRunner, AdaptiveBlockDrivesSeedAllocation) {
  ScenarioSpec spec = parse_scenario(kMiniSweep);
  spec.adaptive = AdaptiveSpec{.min_seeds = 2,
                               .batch = 2,
                               .max_seeds = 8,
                               .half_width = 0.4,
                               .confidence = 0.95};
  const auto result = run_scenario_adaptive(
      spec, ScenarioRegistry::builtin(), with_threads(4));
  ASSERT_TRUE(result.complete);
  std::uint64_t total = 0;
  for (const exp::AdaptiveCell& cell : result.cells) {
    EXPECT_GE(cell.seeds_used, 2u);
    EXPECT_LE(cell.seeds_used, 8u);
    EXPECT_LE(cell.ci.lo, cell.ci.hi);
    total += cell.seeds_used;
  }
  EXPECT_EQ(total, result.engine_runs);
}

TEST(ScenarioRunner, SeedsOverrideCapsAdaptiveBudget) {
  ScenarioSpec spec = parse_scenario(kMiniSweep);
  spec.adaptive = AdaptiveSpec{.min_seeds = 4,
                               .batch = 4,
                               .max_seeds = 64,
                               .half_width = 0.05,
                               .confidence = 0.95};
  SpecOverrides overrides;
  overrides.seeds = 3;
  apply_overrides(spec, overrides);
  EXPECT_EQ(spec.adaptive->max_seeds, 3u);
  EXPECT_EQ(spec.adaptive->min_seeds, 3u);
  EXPECT_EQ(spec.adaptive->batch, 3u);
}

TEST(ScenarioRunner, ResumeRejectsCheckpointFromDifferentComponents) {
  // The engine configs of two specs can be identical while the registry
  // wires entirely different adversaries/networks — the component
  // identity must be part of the checkpoint fingerprint.
  const std::string path =
      (std::filesystem::temp_directory_path() /
       "neatbound_component_fingerprint.json").string();
  std::filesystem::remove(path);

  ScenarioSpec spec = parse_scenario(kMiniSweep);
  ScenarioRunOptions options = with_threads(2);
  options.checkpoint_path = path;
  (void)run_scenario_adaptive(spec, ScenarioRegistry::builtin(), options);

  ScenarioSpec other = parse_scenario(kMiniSweep);
  other.adversary.kind = "max-delay";  // same engine configs, other attacker
  options.resume = true;
  EXPECT_THROW((void)run_scenario_adaptive(
                   other, ScenarioRegistry::builtin(), options),
               std::runtime_error);

  // The unchanged spec still resumes.
  EXPECT_NO_THROW((void)run_scenario_adaptive(
      spec, ScenarioRegistry::builtin(), options));
  std::filesystem::remove(path);
}

TEST(ScenarioRunner, AdaptiveReportAppendsVerdictColumns) {
  ScenarioSpec spec = parse_scenario(kMiniSweep);
  spec.adaptive = AdaptiveSpec{.min_seeds = 2,
                               .batch = 2,
                               .max_seeds = 4,
                               .half_width = 0.0,
                               .confidence = 0.95};
  spec.report.columns.clear();  // default columns gain the verdict trio
  spec.report.section_by.clear();
  spec.report.section_label.clear();
  const auto result = run_scenario_adaptive(
      spec, ScenarioRegistry::builtin(), with_threads(2));
  RecordingSink sink;
  render_adaptive_report(spec, result.cells, sink);
  ASSERT_EQ(sink.sections.size(), 1u);
  const auto& headers = sink.sections[0].headers;
  ASSERT_GE(headers.size(), 3u);
  EXPECT_EQ(headers[headers.size() - 3], "seeds used");
  EXPECT_EQ(headers[headers.size() - 2], "ci low");
  EXPECT_EQ(headers[headers.size() - 1], "ci high");
  for (const auto& row : sink.sections[0].rows) {
    EXPECT_EQ(row[row.size() - 3], "4");  // half_width 0 → full budget
  }
  // The verdict names only resolve for adaptive cells.
  const auto plain =
      run_scenario(spec, ScenarioRegistry::builtin(), with_threads(2));
  const CellContext context(spec, plain[0]);
  EXPECT_THROW((void)context.value("seeds_used"), std::runtime_error);
}

TEST(ScenarioRunner, RendersBenchStyleSections) {
  const ScenarioSpec spec = parse_scenario(kMiniSweep);
  const auto cells =
      run_scenario(spec, ScenarioRegistry::builtin(), with_threads(0));
  RecordingSink sink;
  render_report(spec, cells, sink);

  ASSERT_EQ(sink.sections.size(), 2u);  // one per nu value
  const double bound_015 = bounds::neat_bound_c(0.15);
  EXPECT_EQ(sink.sections[0].name,
            "nu = 0.15   (neat bound: c > " + format_fixed(bound_015, 3) +
                ")");
  ASSERT_EQ(sink.sections[0].rows.size(), 2u);  // one per multiple
  ASSERT_EQ(sink.sections[0].headers.size(), 5u);
  // Row cells reproduce the bench's formatting calls exactly.
  EXPECT_EQ(sink.sections[0].rows[0][0], "0.15");
  EXPECT_EQ(sink.sections[0].rows[0][1],
            format_fixed(bound_015 * 0.5, 3));
  EXPECT_EQ(sink.sections[0].rows[0][2], "0.50");
  EXPECT_EQ(sink.sections[1].rows[1][2], "2.00");
  EXPECT_FALSE(sink.finished);  // render_report leaves finish to the caller
}

TEST(ScenarioRunner, DefaultColumnsCoverAxesAndCoreStats) {
  const ScenarioSpec spec = parse_scenario(
      R"({"name": "d", "engine": {"miners": 8, "nu": 0.25, "delta": 2,
          "rounds": 120, "p": 0.02},
          "axes": [{"name": "delta", "values": [1, 2]}], "seeds": 1,
          "adversary": {"strategy": "max-delay"}})");
  const auto cells =
      run_scenario(spec, ScenarioRegistry::builtin(), with_threads(1));
  RecordingSink sink;
  render_report(spec, cells, sink);
  ASSERT_EQ(sink.sections.size(), 1u);
  EXPECT_EQ(sink.sections[0].name, "");  // unsectioned
  EXPECT_EQ(sink.sections[0].rows.size(), 2u);
  // First column is the axis.
  EXPECT_EQ(sink.sections[0].headers[0], "delta");
  EXPECT_EQ(sink.sections[0].rows[0][0], "1.0000");
  EXPECT_EQ(sink.sections[0].rows[1][0], "2.0000");
}

TEST(ScenarioRunner, OverridesReplaceEngineDefaults) {
  ScenarioSpec spec = parse_scenario(kMiniSweep);
  SpecOverrides overrides;
  overrides.miners = 12;
  overrides.rounds = 100;
  overrides.seeds = 1;
  overrides.base_seed = 777;
  apply_overrides(spec, overrides);
  EXPECT_EQ(spec.miners, 12u);
  EXPECT_EQ(spec.rounds, 100u);
  EXPECT_EQ(spec.seeds, 1u);
  EXPECT_EQ(spec.base_seed, 777u);

  const exp::SweepGrid grid = build_grid(spec);
  const sim::ExperimentConfig config = build_config(spec, grid.point(0));
  EXPECT_EQ(config.engine.miner_count, 12u);
  EXPECT_EQ(config.engine.rounds, 100u);
  EXPECT_EQ(config.seeds, 1u);
  EXPECT_EQ(config.base_seed, 777u);
  // The nu axis still wins over any default.
  EXPECT_DOUBLE_EQ(config.engine.adversary_fraction, 0.15);
}

TEST(ScenarioRunner, HardnessModeCMatchesFormula) {
  const ScenarioSpec spec = parse_scenario(
      R"({"name": "c-mode", "engine": {"miners": 20, "nu": 0.2, "delta": 4,
          "rounds": 200},
          "axes": [{"name": "c", "values": [0.5, 2.0]}],
          "hardness": {"mode": "c"}, "seeds": 1})");
  const exp::SweepGrid grid = build_grid(spec);
  const sim::ExperimentConfig config = build_config(spec, grid.point(1));
  EXPECT_EQ(config.engine.p, 1.0 / (2.0 * 20.0 * 4.0));
}

TEST(ScenarioRunner, InvalidEngineParametersFailFast) {
  // ν ≥ 1/2 (covers ν ≥ 1) rejected by validate_engine_config before any
  // engine run spawns.
  const ScenarioSpec bad_nu = parse_scenario(
      R"({"name": "bad", "engine": {"miners": 8, "nu": 0.8, "delta": 2,
          "rounds": 100, "p": 0.01}, "seeds": 1})");
  EXPECT_THROW(
      (void)run_scenario(bad_nu, ScenarioRegistry::builtin(), with_threads(1)),
      ContractViolation);

  const ScenarioSpec bad_p = parse_scenario(
      R"({"name": "bad", "engine": {"miners": 8, "nu": 0.2, "delta": 2,
          "rounds": 100, "p": 1.5}, "seeds": 1})");
  EXPECT_THROW(
      (void)run_scenario(bad_p, ScenarioRegistry::builtin(), with_threads(1)),
      ContractViolation);
}

TEST(ScenarioRunner, UnknownComponentFailsBeforeRunning) {
  const ScenarioSpec spec = parse_scenario(
      R"({"name": "x", "engine": {"miners": 8, "nu": 0.2, "delta": 2,
          "rounds": 100, "p": 0.01}, "seeds": 1,
          "adversary": {"strategy": "nonexistent"}})");
  EXPECT_THROW(
      (void)run_scenario(spec, ScenarioRegistry::builtin(), with_threads(1)),
      std::runtime_error);
}

TEST(ScenarioRunner, UnknownReportValueNamesTheCategories) {
  const ScenarioSpec spec = parse_scenario(
      R"({"name": "x", "engine": {"miners": 8, "nu": 0.2, "delta": 2,
          "rounds": 100, "p": 0.02}, "seeds": 1,
          "report": {"columns": [{"value": "wat"}]}})");
  const auto cells =
      run_scenario(spec, ScenarioRegistry::builtin(), with_threads(1));
  RecordingSink sink;
  EXPECT_THROW(render_report(spec, cells, sink), std::runtime_error);
}

TEST(ScenarioRunner, LabelTemplateEscapesAndPrecision) {
  const ScenarioSpec spec = parse_scenario(
      R"({"name": "x", "engine": {"miners": 8, "nu": 0.25, "delta": 2,
          "rounds": 100, "p": 0.02}, "seeds": 1})");
  const auto cells =
      run_scenario(spec, ScenarioRegistry::builtin(), with_threads(1));
  const CellContext context(spec, cells[0]);
  EXPECT_EQ(format_label("nu={nu:2} {{braces}}", context),
            "nu=0.25 {braces}");
  EXPECT_EQ(format_label("p6={nu}", context), "p6=0.250000");
  EXPECT_THROW((void)format_label("broken {nu", context),
               std::runtime_error);
  EXPECT_THROW((void)format_label("{nu:x}", context), std::runtime_error);
}

}  // namespace
}  // namespace neatbound::scenario
