#include "scenario/registry.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "scenario/json.hpp"
#include "sim/engine.hpp"

namespace neatbound::scenario {
namespace {

sim::EngineConfig small_engine() {
  sim::EngineConfig engine;
  engine.miner_count = 12;
  engine.adversary_fraction = 0.25;
  engine.p = 0.02;
  engine.delta = 3;
  engine.rounds = 120;
  engine.seed = 5;
  return engine;
}

Params params_from(const char* json) {
  return Params::from_object(parse_json(json), {});
}

TEST(Registry, ExposesRequiredComponentCounts) {
  const ScenarioRegistry& registry = ScenarioRegistry::builtin();
  // The acceptance bar: ≥ 3 network models and ≥ 7 adversary strategies.
  EXPECT_GE(registry.network_models().size(), 3u);
  EXPECT_GE(registry.adversary_strategies().size(), 7u);
  for (const char* model : {"strategy", "immediate", "max-delay", "uniform",
                            "split", "bursty", "eclipse"}) {
    EXPECT_TRUE(registry.has_network(model)) << model;
  }
  for (const char* strategy :
       {"null", "max-delay", "private-withhold", "balance-attack",
        "selfish-mining", "fork-balancer", "delay-saturate"}) {
    EXPECT_TRUE(registry.has_strategy(strategy)) << strategy;
  }
}

TEST(Registry, EveryStrategyRunsOnEveryNetworkModel) {
  // The full cross product, each through a real (tiny) engine run: every
  // registered component is exercised end to end, and composition via
  // ScheduleAdversary holds for arbitrary pairs.
  const ScenarioRegistry& registry = ScenarioRegistry::builtin();
  for (const auto& model : registry.network_models()) {
    for (const auto& strategy : registry.adversary_strategies()) {
      const sim::EngineConfig engine_config = small_engine();
      auto adversary =
          registry.make_adversary(model.name, Params{}, strategy.name,
                                  Params{}, engine_config);
      ASSERT_NE(adversary, nullptr) << model.name << "+" << strategy.name;
      if (model.name == "strategy") {
        EXPECT_STREQ(adversary->name(), strategy.name.c_str());
      } else {
        EXPECT_EQ(std::string(adversary->name()),
                  model.name + "+" + strategy.name);
      }
      sim::ExecutionEngine engine(engine_config, std::move(adversary));
      const sim::RunResult result = engine.run();
      EXPECT_GE(result.store_size, 1u)
          << model.name << "+" << strategy.name;
    }
  }
}

TEST(Registry, StrategyModelLeavesDelaysToTheStrategy) {
  const ScenarioRegistry& registry = ScenarioRegistry::builtin();
  const sim::EngineConfig engine_config = small_engine();
  EXPECT_EQ(registry.make_network("strategy", Params{}, engine_config,
                                  sim::honest_miner_count(engine_config)),
            nullptr);
  EXPECT_NE(registry.make_network("eclipse", Params{}, engine_config,
                                  sim::honest_miner_count(engine_config)),
            nullptr);
}

TEST(Registry, ComponentParametersReachTheFactories) {
  const ScenarioRegistry& registry = ScenarioRegistry::builtin();
  const sim::EngineConfig engine_config = small_engine();
  const std::uint32_t honest = sim::honest_miner_count(engine_config);

  // Valid parameters build fine.
  (void)registry.make_network("bursty",
                              params_from(R"({"period": 9, "burst_length": 4,
                                              "phase": 1})"),
                              engine_config, honest);
  (void)registry.make_strategy(
      "private-withhold",
      params_from(R"({"min_fork_depth": 3, "give_up_margin": 9})"),
      engine_config, honest);

  // Out-of-range parameter values surface as errors, not silent clamps.
  EXPECT_THROW((void)registry.make_network(
                   "eclipse", params_from(R"({"victims": 1000})"),
                   engine_config, honest),
               std::runtime_error);
  EXPECT_THROW((void)registry.make_network(
                   "split", params_from(R"({"split_fraction": 1.5})"),
                   engine_config, honest),
               std::runtime_error);
  // A fraction that rounds to an empty side is no partition at all.
  EXPECT_THROW((void)registry.make_network(
                   "split", params_from(R"({"split_fraction": 0.01})"),
                   engine_config, honest),
               std::runtime_error);
}

TEST(Registry, RejectsUnknownNamesAndParameters) {
  const ScenarioRegistry& registry = ScenarioRegistry::builtin();
  const sim::EngineConfig engine_config = small_engine();
  const std::uint32_t honest = sim::honest_miner_count(engine_config);

  EXPECT_THROW((void)registry.make_network("wormhole", Params{},
                                           engine_config, honest),
               std::runtime_error);
  EXPECT_THROW((void)registry.make_strategy("santa", Params{}, engine_config,
                                            honest),
               std::runtime_error);
  // Unknown parameter keys are typos, never defaults.
  EXPECT_THROW((void)registry.make_network(
                   "bursty", params_from(R"({"perod": 9})"), engine_config,
                   honest),
               std::runtime_error);
  EXPECT_THROW((void)registry.make_strategy(
                   "selfish-mining", params_from(R"({"gama": 0.3})"),
                   engine_config, honest),
               std::runtime_error);
  // Strategies with no parameters reject anything.
  EXPECT_THROW((void)registry.make_strategy(
                   "null", params_from(R"({"x": 1})"), engine_config,
                   honest),
               std::runtime_error);
}

TEST(Registry, DuplicateRegistrationThrows) {
  ScenarioRegistry registry;
  register_builtin_networks(registry);
  EXPECT_THROW(register_builtin_networks(registry), std::invalid_argument);
}

TEST(Registry, HonestCountMatchesEngineRounding) {
  sim::EngineConfig engine = small_engine();
  engine.miner_count = 12;
  engine.adversary_fraction = 0.25;  // llround(3.0) = 3 → 9 honest
  EXPECT_EQ(sim::honest_miner_count(engine), 9u);
  engine.miner_count = 10;
  engine.adversary_fraction = 0.25;  // llround(2.5) = 3 (half away) → 7
  EXPECT_EQ(sim::honest_miner_count(engine), 7u);
  engine.adversary_fraction = 0.0;
  EXPECT_EQ(sim::honest_miner_count(engine), 10u);
}

}  // namespace
}  // namespace neatbound::scenario
