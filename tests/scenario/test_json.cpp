#include "scenario/json.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace neatbound::scenario {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_EQ(parse_json("true").as_bool(), true);
  EXPECT_EQ(parse_json("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(parse_json("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(parse_json("-3.5e2").as_number(), -350.0);
  EXPECT_EQ(parse_json("\"hi\"").as_string(), "hi");
}

TEST(Json, NumbersRoundTripAsCppLiterals) {
  // Scenario grids must reproduce hand-written bench grids bit-for-bit,
  // which hangs on strtod's correct rounding.
  EXPECT_EQ(parse_json("0.15").as_number(), 0.15);
  EXPECT_EQ(parse_json("0.4").as_number(), 0.4);
  EXPECT_EQ(parse_json("10.0").as_number(), 10.0);
}

TEST(Json, ParsesNestedStructure) {
  const JsonValue doc = parse_json(
      R"({"name": "x", "axes": [{"name": "nu", "values": [0.1, 0.2]}],
          "flag": true, "nothing": null})");
  EXPECT_EQ(doc.at("name").as_string(), "x");
  const auto& axes = doc.at("axes").as_array();
  ASSERT_EQ(axes.size(), 1u);
  EXPECT_EQ(axes[0].at("values").as_array().size(), 2u);
  EXPECT_TRUE(doc.at("flag").as_bool());
  EXPECT_TRUE(doc.at("nothing").is_null());
  EXPECT_EQ(doc.find("absent"), nullptr);
}

TEST(Json, PreservesObjectKeyOrder) {
  const JsonValue doc = parse_json(R"({"z": 1, "a": 2, "m": 3})");
  const auto& members = doc.as_object();
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0].first, "z");
  EXPECT_EQ(members[1].first, "a");
  EXPECT_EQ(members[2].first, "m");
}

TEST(Json, StringEscapes) {
  EXPECT_EQ(parse_json(R"("a\"b\\c\nd\teA")").as_string(),
            "a\"b\\c\nd\teA");
}

TEST(Json, UintAccessorChecksIntegrality) {
  EXPECT_EQ(parse_json("7").as_uint(), 7u);
  EXPECT_THROW((void)parse_json("7.5").as_uint(), std::runtime_error);
  EXPECT_THROW((void)parse_json("-1").as_uint(), std::runtime_error);
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW((void)parse_json(""), std::runtime_error);
  EXPECT_THROW((void)parse_json("{"), std::runtime_error);
  EXPECT_THROW((void)parse_json("[1,]"), std::runtime_error);
  EXPECT_THROW((void)parse_json("{\"a\" 1}"), std::runtime_error);
  EXPECT_THROW((void)parse_json("tru"), std::runtime_error);
  EXPECT_THROW((void)parse_json("1 2"), std::runtime_error);
  EXPECT_THROW((void)parse_json("\"unterminated"), std::runtime_error);
  EXPECT_THROW((void)parse_json("01x"), std::runtime_error);
}

TEST(Json, RejectsDuplicateKeys) {
  EXPECT_THROW((void)parse_json(R"({"a": 1, "a": 2})"), std::runtime_error);
}

TEST(Json, ErrorsCarryPosition) {
  try {
    (void)parse_json("{\n  \"a\": ???\n}");
    FAIL() << "expected a parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("2:"), std::string::npos)
        << e.what();
  }
}

TEST(Json, KindMismatchNamesBothKinds) {
  try {
    (void)parse_json("[1]").as_object();
    FAIL() << "expected a kind error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("object"), std::string::npos);
    EXPECT_NE(what.find("array"), std::string::npos);
  }
}

}  // namespace
}  // namespace neatbound::scenario
