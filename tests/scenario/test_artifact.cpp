// Violation-artifact tests: the scan→freeze→serialize→parse→replay
// round trip must be lossless and deterministic, and the strict reader
// must reject truncated or hand-tampered artifacts with errors naming
// the offence instead of replaying them into nonsense.
#include "scenario/artifact.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

#include "scenario/registry.hpp"
#include "scenario/spec.hpp"
#include "sim/oracle.hpp"
#include "support/contracts.hpp"

namespace neatbound::scenario {
namespace {

/// A small spec on the unsafe side of the neat bound (multiple < 1):
/// the scan trips within the first seed or two.
ScenarioSpec violent_spec() {
  return parse_scenario(R"json({
    "name": "artifact_test",
    "engine": {"miners": 12, "nu": 0.4, "delta": 3, "rounds": 400},
    "axes": [{"name": "multiple", "values": [0.2]}],
    "hardness": {"mode": "neat-bound-multiple"},
    "seeds": 6,
    "base_seed": 611,
    "violation_t": 3,
    "oracle": {"invariants": ["common-prefix"], "slice_rounds": 24},
    "adversary": {"strategy": "fork-balancer"},
    "network": {"model": "strategy"}
  })json");
}

ViolationArtifact scan_one() {
  const ScenarioSpec spec = violent_spec();
  const auto& registry = ScenarioRegistry::builtin();
  const OracleScanResult scan = run_scenario_oracle(spec, registry, 0);
  EXPECT_TRUE(scan.artifact.has_value())
      << "the falsification cell must actually trip the oracle";
  return *scan.artifact;
}

std::string serialize(const ViolationArtifact& artifact) {
  std::ostringstream os;
  write_artifact(os, artifact);
  return os.str();
}

TEST(Artifact, ScanSerializeParseReplayRoundTrips) {
  const ViolationArtifact original = scan_one();
  EXPECT_EQ(original.violation.kind, sim::InvariantKind::kCommonPrefix);
  EXPECT_GT(original.violation.measured, original.oracle.common_prefix_t);
  EXPECT_EQ(original.views.size(), sim::honest_miner_count(original.engine));

  const std::string text = serialize(original);
  const ViolationArtifact parsed = parse_artifact(text);

  // Parse is lossless: re-serializing the parsed artifact reproduces the
  // exact bytes (doubles go through %.17g both ways).
  EXPECT_EQ(serialize(parsed), text);
  EXPECT_EQ(parsed.violation, original.violation);
  ASSERT_EQ(parsed.views.size(), original.views.size());
  for (std::size_t i = 0; i < parsed.views.size(); ++i) {
    EXPECT_EQ(parsed.views[i], original.views[i]) << "view " << i;
  }
  EXPECT_EQ(parsed.slice.size(), original.slice.size());
  EXPECT_EQ(parsed.engine.seed, original.engine.seed);
  EXPECT_EQ(parsed.adversary.kind, original.adversary.kind);
  EXPECT_EQ(parsed.network.kind, original.network.kind);

  const ReplayResult replay =
      replay_artifact(parsed, ScenarioRegistry::builtin());
  EXPECT_TRUE(replay.violated);
  EXPECT_TRUE(replay.reproduced)
      << (replay.mismatches.empty() ? std::string("(no mismatches?)")
                                    : replay.mismatches.front());
  EXPECT_TRUE(replay.mismatches.empty());
  EXPECT_EQ(replay.violation, original.violation);
}

TEST(Artifact, ReplayIsDeterministicAcrossRepeats) {
  const ViolationArtifact artifact = scan_one();
  const auto& registry = ScenarioRegistry::builtin();
  const ReplayResult first = replay_artifact(artifact, registry);
  const ReplayResult second = replay_artifact(artifact, registry);
  EXPECT_TRUE(first.reproduced);
  EXPECT_TRUE(second.reproduced);
  EXPECT_EQ(first.violation, second.violation);
}

TEST(Artifact, TamperedViewIsCaughtByReplay) {
  ViolationArtifact artifact = scan_one();
  // A plausible-looking but wrong view height: the strict reader cannot
  // see it (it is internally consistent), but replay must.
  artifact.views.front().height += 1;
  const ReplayResult replay =
      replay_artifact(artifact, ScenarioRegistry::builtin());
  EXPECT_TRUE(replay.violated);
  EXPECT_FALSE(replay.reproduced);
  ASSERT_FALSE(replay.mismatches.empty());
  EXPECT_NE(replay.mismatches.front().find("view"), std::string::npos);
}

TEST(Artifact, TamperedSeedIsCaughtByReplay) {
  ViolationArtifact artifact = scan_one();
  artifact.engine.seed += 1;
  const ReplayResult replay =
      replay_artifact(artifact, ScenarioRegistry::builtin());
  // A different seed almost surely diverges somewhere; whatever happens,
  // it must not claim reproduction of the original verdict.
  EXPECT_FALSE(replay.reproduced);
  EXPECT_FALSE(replay.mismatches.empty());
}

void expect_rejected(const std::string& text, const std::string& what) {
  try {
    (void)parse_artifact(text);
    FAIL() << "parse accepted a corrupt artifact (" << what << ")";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("violation artifact"),
              std::string::npos)
        << what << ": error should carry the artifact prefix, got: "
        << error.what();
  }
}

TEST(Artifact, StrictReaderRejectsCorruptDocuments) {
  const std::string good = serialize(scan_one());

  // Truncation: cut the document mid-way.
  expect_rejected(good.substr(0, good.size() / 2), "truncated JSON");

  // Wrong format tag.
  {
    std::string bad = good;
    const auto pos = bad.find("neatbound-violation-v2");
    ASSERT_NE(pos, std::string::npos);
    bad.replace(pos, 22, "neatbound-violation-v9");
    expect_rejected(bad, "format tag");
  }

  // Unknown top-level key.
  {
    std::string bad = good;
    const auto pos = bad.find("\"format\"");
    ASSERT_NE(pos, std::string::npos);
    bad.insert(pos, "\"surprise\":1,");
    expect_rejected(bad, "unknown key");
  }

  // Missing key: drop violation_t entirely.
  {
    std::string bad = good;
    const auto pos = bad.find("\"violation_t\"");
    ASSERT_NE(pos, std::string::npos);
    const auto end = bad.find('\n', pos);
    ASSERT_NE(end, std::string::npos);
    bad.erase(pos, end - pos + 1);
    expect_rejected(bad, "missing violation_t");
  }

  // Unknown invariant name in the violation tuple.
  {
    std::string bad = good;
    const auto pos = bad.find("\"common-prefix\"");
    ASSERT_NE(pos, std::string::npos);
    bad.replace(pos, 15, "\"common-suffix\"");
    expect_rejected(bad, "unknown invariant");
  }

  // A measured value that does not actually violate the bound.
  {
    const ViolationArtifact artifact = scan_one();
    ViolationArtifact bad = artifact;
    bad.violation.measured = bad.violation.bound;  // not > bound any more
    expect_rejected(serialize(bad), "non-violating measured");
  }

  // A slice that does not end at the violating round.
  {
    ViolationArtifact bad = scan_one();
    ASSERT_FALSE(bad.slice.empty());
    bad.slice.back().round += 1;
    expect_rejected(serialize(bad), "slice/violation round mismatch");
  }

  // A short slice (dropped record).
  {
    ViolationArtifact bad = scan_one();
    ASSERT_GT(bad.slice.size(), 1u);
    bad.slice.erase(bad.slice.begin());
    expect_rejected(serialize(bad), "short slice");
  }

  // Views not covering the honest miners.
  {
    ViolationArtifact bad = scan_one();
    ASSERT_FALSE(bad.views.empty());
    bad.views.pop_back();
    expect_rejected(serialize(bad), "missing view");
  }

  // A mangled hash string.
  {
    std::string bad = good;
    const auto pos = bad.find("\"hash\":\"0x");
    ASSERT_NE(pos, std::string::npos);
    bad[pos + 10] = 'z';
    expect_rejected(bad, "malformed hash");
  }

  // Not JSON at all.
  expect_rejected("not json", "non-JSON input");
}

TEST(Artifact, LoadFileRejectsMissingPath) {
  EXPECT_THROW((void)load_artifact_file("/nonexistent/neatbound/a.json"),
               std::runtime_error);
}

TEST(Artifact, ResolveOracleConfigDefaultsToViolationT) {
  ScenarioSpec spec = violent_spec();
  // Spec has an oracle block without common_prefix_t: T defaults to the
  // spec's violation_t.
  const sim::OracleConfig from_block = resolve_oracle_config(spec);
  EXPECT_TRUE(from_block.common_prefix);
  EXPECT_EQ(from_block.common_prefix_t, spec.violation_t);
  EXPECT_EQ(from_block.slice_rounds, 24u);
  EXPECT_EQ(from_block.growth_window, 0u);   // not in the invariants list
  EXPECT_EQ(from_block.quality_window, 0u);

  // And with no oracle block at all: common-prefix-only defaults.
  spec.oracle.reset();
  const sim::OracleConfig defaulted = resolve_oracle_config(spec);
  EXPECT_TRUE(defaulted.common_prefix);
  EXPECT_EQ(defaulted.common_prefix_t, spec.violation_t);
}

TEST(Artifact, ScanHonoursMaxRuns) {
  const ScenarioSpec spec = violent_spec();
  const auto& registry = ScenarioRegistry::builtin();
  const OracleScanResult capped = run_scenario_oracle(spec, registry, 1);
  EXPECT_LE(capped.runs_scanned, 1u);

  // The scan is deterministic: two full scans freeze the same violation.
  const OracleScanResult a = run_scenario_oracle(spec, registry, 0);
  const OracleScanResult b = run_scenario_oracle(spec, registry, 0);
  ASSERT_TRUE(a.artifact.has_value());
  ASSERT_TRUE(b.artifact.has_value());
  EXPECT_EQ(a.runs_scanned, b.runs_scanned);
  EXPECT_EQ(a.cell_index, b.cell_index);
  EXPECT_EQ(a.seed_index, b.seed_index);
  EXPECT_EQ(a.artifact->violation, b.artifact->violation);
  EXPECT_EQ(serialize(*a.artifact), serialize(*b.artifact));
}

TEST(Artifact, BuildRequiresATrippedOracle) {
  sim::OracleConfig config;
  const sim::InvariantOracle oracle(config);
  sim::EngineConfig engine;
  ComponentSpec adversary{"null", Params{}};
  ComponentSpec network{"strategy", Params{}};
  EXPECT_THROW(
      (void)build_artifact(engine, 6, adversary, network, oracle),
      ContractViolation);
}

}  // namespace
}  // namespace neatbound::scenario
