#include <cmath>
#include <gtest/gtest.h>

#include "analysis/figure1.hpp"
#include "analysis/tables.hpp"
#include "analysis/validation.hpp"

namespace neatbound::analysis {
namespace {

TEST(Figure1, GridContainsPaperTicks) {
  const auto grid = figure1_c_grid();
  for (const double tick : {0.1, 0.3, 1.0, 2.0, 3.0, 10.0, 30.0, 100.0}) {
    bool found = false;
    for (const double c : grid) {
      if (std::fabs(c - tick) < 1e-9 * tick) found = true;
    }
    EXPECT_TRUE(found) << "missing tick " << tick;
  }
  // Sorted, deduplicated.
  for (std::size_t i = 1; i < grid.size(); ++i) {
    EXPECT_GT(grid[i], grid[i - 1]);
  }
}

TEST(Figure1, SeriesReproducesPaperOrdering) {
  const std::vector<double> cs = {0.1, 0.3, 1.0, 2.0, 3.0, 10.0, 30.0, 100.0};
  const auto rows = figure1_series(cs);
  ASSERT_EQ(rows.size(), cs.size());
  for (const auto& row : rows) {
    // Magenta strictly above blue (the paper's key claim)…
    EXPECT_GT(row.nu_zhao_neat, row.nu_pss) << "c=" << row.c;
    // …and strictly below the attack frontier (no contradiction).
    EXPECT_LT(row.nu_zhao_neat, row.nu_attack) << "c=" << row.c;
    // Theorem 1 exact ≥ the neat bound derived from it.
    EXPECT_GE(row.nu_zhao_theorem1, row.nu_zhao_theorem2 * (1.0 - 1e-6))
        << "c=" << row.c;
    // All values in [0, ½).
    EXPECT_GE(row.nu_zhao_neat, 0.0);
    EXPECT_LT(row.nu_attack, 0.5);
  }
}

TEST(Figure1, KnownPointsAtC2AndC3) {
  // Checkable by hand from the closed forms: at c = 3 the blue line is
  // (2−3+√3)/2 ≈ 0.366; the red line is (7−√37)/2 ≈ 0.4586.
  const std::vector<double> cs = {3.0};
  const auto rows = figure1_series(cs);
  EXPECT_NEAR(rows[0].nu_pss, (std::sqrt(3.0) - 1.0) / 2.0, 1e-9);
  EXPECT_NEAR(rows[0].nu_attack, (7.0 - std::sqrt(37.0)) / 2.0, 1e-9);
  // Magenta at c = 3: solve 2(1−ν)/ln((1−ν)/ν) = 3 → ν ≈ 0.4016 (between
  // blue 0.366 and red 0.459); spot check: 2·0.6/ln(0.6/0.4) ≈ 2.96 ≈ 3.
  EXPECT_NEAR(rows[0].nu_zhao_neat, 0.4016, 2e-3);
}

TEST(Figure1, PssExactTracksClosedForm) {
  const std::vector<double> cs = {3.0, 10.0, 50.0};
  const auto rows = figure1_series(cs);
  for (const auto& row : rows) {
    EXPECT_NEAR(row.nu_pss_exact, row.nu_pss,
                std::max(0.002, row.nu_pss * 0.02))
        << "c=" << row.c;
  }
}

TEST(DerivedQuantities, RowReflectsParams) {
  const auto params = bounds::ProtocolParams::from_c(1e5, 1e13, 0.25, 2.0);
  const DerivedQuantitiesRow row = derived_quantities(params);
  EXPECT_NEAR(row.c, 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(row.mu, 0.75);
  EXPECT_LT(row.log_alpha_bar, 0.0);
  EXPECT_TRUE(std::isfinite(row.theorem1_log_margin));
  // At ν = 0.25, c = 2: neat bound ≈ 1.365 < 2 → Theorem 1 and 2 hold;
  // PSS needs c > 2.25 → fails.
  EXPECT_TRUE(row.theorem1_ok);
  EXPECT_TRUE(row.theorem2_ok);
  EXPECT_FALSE(row.pss_ok);
}

TEST(DerivedQuantities, RepresentativePointsNonEmpty) {
  const auto points = representative_points();
  EXPECT_GE(points.size(), 4u);
  for (const auto& p : points) {
    const auto row = derived_quantities(p);
    EXPECT_GT(row.c, 0.0);
  }
}

TEST(Remark1Rows, PaperPairsPresent) {
  const auto rows = remark1_rows();
  ASSERT_GE(rows.size(), 2u);
  EXPECT_NEAR(rows[0].d1, 1.0 / 6.0, 1e-12);
  EXPECT_NEAR(rows[0].d2, 1.0 / 2.0, 1e-12);
  EXPECT_NEAR(rows[1].d1, 1.0 / 8.0, 1e-12);
  EXPECT_NEAR(rows[1].d2, 2.0 / 3.0, 1e-12);
  for (const auto& row : rows) {
    EXPECT_GT(row.c_threshold, row.c_neat);
    EXPECT_LT((row.c_threshold - row.c_neat) / row.c_neat, 0.01);
  }
}

TEST(Validation, ConvergenceRateRatioNearOne) {
  const ConvergenceRateRow row = validate_convergence_rate(
      /*n=*/200, /*delta=*/4, /*c=*/4.0, /*nu=*/0.25,
      /*rounds=*/200000, /*seeds=*/8);
  EXPECT_GT(row.analytic_rate, 0.0);
  EXPECT_NEAR(row.ratio, 1.0, 0.15);
  EXPECT_TRUE(row.ci.contains(row.expected_count))
      << "[" << row.ci.lo << ", " << row.ci.hi << "] vs "
      << row.expected_count;
}

TEST(Validation, AdversaryCountRatioNearOne) {
  const AdversaryCountRow row = validate_adversary_count(
      /*n=*/200, /*delta=*/4, /*c=*/4.0, /*nu=*/0.25,
      /*rounds=*/100000, /*seeds=*/8);
  EXPECT_NEAR(row.ratio, 1.0, 0.05);
  EXPECT_LT(row.tail_exponent_at_10pct, 0.0);
}

TEST(Validation, StationaryComparisonAllMethodsAgree) {
  const StationaryComparisonRow row = compare_stationary(4, 0.2);
  EXPECT_TRUE(row.ergodic);
  EXPECT_NEAR(row.closed_form_sum, 1.0, 1e-12);
  EXPECT_LT(row.max_abs_err_power, 1e-9);
  EXPECT_LT(row.max_abs_err_fixed, 1e-9);
  EXPECT_LT(row.max_abs_err_walk, 0.01);
}

}  // namespace
}  // namespace neatbound::analysis
