#include "sim/engine.hpp"

#include <gtest/gtest.h>
#include <memory>

#include "chains/convergence.hpp"
#include "protocol/validation.hpp"
#include "sim/strategies.hpp"
#include "support/contracts.hpp"

namespace neatbound::sim {
namespace {

EngineConfig small_config() {
  EngineConfig config;
  config.miner_count = 20;
  config.adversary_fraction = 0.0;
  config.p = 0.002;  // ≈ 0.04 blocks/round from 20 miners
  config.delta = 3;
  config.rounds = 4000;
  config.seed = 42;
  return config;
}

TEST(Engine, RunsAndCountsBlocks) {
  ExecutionEngine engine(small_config(), std::make_unique<NullAdversary>());
  const RunResult result = engine.run();
  EXPECT_EQ(result.honest_counts.size(), 4000u);
  std::uint64_t total = 0;
  for (const auto c : result.honest_counts) total += c;
  EXPECT_EQ(total, result.honest_blocks_total);
  EXPECT_GT(result.honest_blocks_total, 0u);
  EXPECT_EQ(result.adversary_blocks_total, 0u);
  // Store holds genesis + every mined block.
  EXPECT_EQ(result.store_size, result.honest_blocks_total + 1);
}

TEST(Engine, ConvergenceCountMatchesOfflineRecount) {
  ExecutionEngine engine(small_config(), std::make_unique<NullAdversary>());
  const RunResult result = engine.run();
  EXPECT_EQ(result.convergence_opportunities,
            chains::count_convergence_opportunities(result.honest_counts,
                                                    small_config().delta));
  EXPECT_GT(result.convergence_opportunities, 0u);
}

TEST(Engine, DeterministicAcrossRuns) {
  ExecutionEngine a(small_config(), std::make_unique<NullAdversary>());
  ExecutionEngine b(small_config(), std::make_unique<NullAdversary>());
  const RunResult ra = a.run();
  const RunResult rb = b.run();
  EXPECT_EQ(ra.honest_blocks_total, rb.honest_blocks_total);
  EXPECT_EQ(ra.honest_counts, rb.honest_counts);
  EXPECT_EQ(ra.convergence_opportunities, rb.convergence_opportunities);
  EXPECT_EQ(ra.chain.best_height, rb.chain.best_height);
}

TEST(Engine, DifferentSeedsDiffer) {
  EngineConfig other = small_config();
  other.seed = 43;
  ExecutionEngine a(small_config(), std::make_unique<NullAdversary>());
  ExecutionEngine b(other, std::make_unique<NullAdversary>());
  EXPECT_NE(a.run().honest_counts, b.run().honest_counts);
}

TEST(Engine, RunTwiceForbidden) {
  ExecutionEngine engine(small_config(), std::make_unique<NullAdversary>());
  (void)engine.run();
  EXPECT_THROW((void)engine.run(), ContractViolation);
}

TEST(Engine, HonestOnlyViewsConvergeEventually) {
  // With no adversary and immediate delivery, after a convergence
  // opportunity all honest tips agree; the divergence metric stays tiny.
  ExecutionEngine engine(small_config(), std::make_unique<NullAdversary>());
  const RunResult result = engine.run();
  // Same-round forks can still happen (two miners mine simultaneously),
  // but they resolve within a block or two.
  EXPECT_LE(result.violation_depth, 3u);
}

TEST(Engine, MaxDelayStillConsistentWhenQuiet) {
  // Max-delay benign adversary: consistency violations stay shallow when
  // c is large (few simultaneous blocks).
  EngineConfig config = small_config();
  config.p = 0.0005;  // c = 1/(p·n·Δ) ≈ 33
  ExecutionEngine engine(config,
                         std::make_unique<MaxDelayAdversary>(config.delta));
  const RunResult result = engine.run();
  EXPECT_LE(result.violation_depth, 3u);
  EXPECT_GT(result.chain.best_height, 0u);
}

TEST(Engine, AgreementAtConvergenceOpportunities) {
  // Protocol-level ground truth for the paper's Lemma 1 intuition: run
  // with the worst benign delivery (max delay), then confirm that at the
  // END of every convergence-opportunity pattern all honest tips agree.
  // We verify a necessary consequence: the best chain's height advanced
  // at least once per opportunity (each opportunity appends a new agreed
  // block), so height ≥ #opportunities.
  EngineConfig config = small_config();
  ExecutionEngine engine(config,
                         std::make_unique<MaxDelayAdversary>(config.delta));
  const RunResult result = engine.run();
  EXPECT_GE(result.chain.best_height, result.convergence_opportunities);
}

TEST(Engine, FinalChainValidates) {
  EngineConfig config = small_config();
  ExecutionEngine engine(config, std::make_unique<NullAdversary>());
  (void)engine.run();
  const auto report = protocol::validate_chain(
      engine.store(), engine.best_honest_tip(), engine.oracle(),
      engine.target(), engine.validation_policy());
  EXPECT_TRUE(report.valid) << report.failure;
}

TEST(Engine, FinalChainValidatesWithPowCertificateInLegacyMode) {
  // Legacy blocks carry the ≤-target certificate, so the strict policy
  // (all checks on) must pass end to end.
  EngineConfig config = small_config();
  config.rng_mode = RngMode::kLegacy;
  ExecutionEngine engine(config, std::make_unique<NullAdversary>());
  (void)engine.run();
  const auto report = protocol::validate_chain(
      engine.store(), engine.best_honest_tip(), engine.oracle(),
      engine.target());
  EXPECT_TRUE(report.valid) << report.failure;
}

TEST(Engine, ChainGrowthMatchesTheoryForNullAdversary) {
  // With d = 1 delivery the longest chain grows by ≥1 whenever some honest
  // miner succeeds; growth/round ≈ α/(1+something small).  Just check the
  // order of magnitude against α.
  EngineConfig config = small_config();
  config.rounds = 20000;
  ExecutionEngine engine(config, std::make_unique<NullAdversary>());
  const RunResult result = engine.run();
  const double alpha = 1.0 - std::pow(1.0 - config.p, 20.0);
  EXPECT_NEAR(result.chain.growth_per_round, alpha, alpha * 0.15);
}

TEST(Engine, QualityIsOneWithoutAdversary) {
  ExecutionEngine engine(small_config(), std::make_unique<NullAdversary>());
  const RunResult result = engine.run();
  EXPECT_DOUBLE_EQ(result.chain.quality, 1.0);
  EXPECT_EQ(result.chain.adversary_blocks_in_chain, 0u);
}

TEST(Engine, ConfigValidation) {
  EngineConfig config = small_config();
  config.miner_count = 3;
  EXPECT_THROW(
      ExecutionEngine(config, std::make_unique<NullAdversary>()),
      ContractViolation);
  config = small_config();
  config.adversary_fraction = 0.5;
  EXPECT_THROW(
      ExecutionEngine(config, std::make_unique<NullAdversary>()),
      ContractViolation);
  config = small_config();
  EXPECT_THROW(ExecutionEngine(config, nullptr), ContractViolation);
}

TEST(Engine, HonestBlockRateMatchesBinomialMean) {
  EngineConfig config = small_config();
  config.rounds = 30000;
  ExecutionEngine engine(config, std::make_unique<NullAdversary>());
  const RunResult result = engine.run();
  const double expected =
      static_cast<double>(config.rounds) * 20.0 * config.p;
  const double observed = static_cast<double>(result.honest_blocks_total);
  // sd ≈ sqrt(expected); allow 5σ.
  EXPECT_NEAR(observed, expected, 5.0 * std::sqrt(expected));
}

TEST(Engine, AdversaryMinesAtExpectedRate) {
  EngineConfig config = small_config();
  config.adversary_fraction = 0.3;  // 6 of 20 miners
  config.rounds = 30000;
  ExecutionEngine engine(config,
                         std::make_unique<PrivateWithholdAdversary>());
  const RunResult result = engine.run();
  const double expected =
      static_cast<double>(config.rounds) * 6.0 * config.p;
  EXPECT_NEAR(static_cast<double>(result.adversary_blocks_total), expected,
              5.0 * std::sqrt(expected));
  // Honest miners are now 14.
  const double expected_honest =
      static_cast<double>(config.rounds) * 14.0 * config.p;
  EXPECT_NEAR(static_cast<double>(result.honest_blocks_total),
              expected_honest, 5.0 * std::sqrt(expected_honest));
}

}  // namespace
}  // namespace neatbound::sim
