// Invariant-oracle tests: name registry round-trips, config validation,
// the oracle↔tracker cross-check property (the oracle's per-round
// common-prefix depth, accumulated, must equal ConsistencyTracker's
// violation depth exactly — across all 7 adversary strategies × several
// network models), first-violation freezing, window invariants, and the
// observer-purity contract (oracle-on fixed-seed trajectories are
// bit-identical to oracle-off, the same contract PR 8 pinned for
// tracing).
#include "sim/oracle.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "scenario/registry.hpp"
#include "support/contracts.hpp"
#include "support/telemetry.hpp"

namespace neatbound::sim {
namespace {

/// A violation-prone cell: high ν, hardness far below the neat bound.
EngineConfig violent_config(std::uint64_t seed) {
  EngineConfig config;
  config.miner_count = 12;
  config.adversary_fraction = 0.4;
  config.p = 0.03;
  config.delta = 3;
  config.rounds = 300;
  config.seed = seed;
  return config;
}

std::unique_ptr<Adversary> build(const std::string& network,
                                 const std::string& strategy,
                                 const EngineConfig& config) {
  const auto& registry = scenario::ScenarioRegistry::builtin();
  return registry.make_adversary(network, scenario::Params{}, strategy,
                                 scenario::Params{}, config);
}

TEST(InvariantNames, RoundTripThroughTheRegistry) {
  const std::vector<std::string> names = invariant_names();
  ASSERT_EQ(names.size(), 3u);
  for (const std::string& name : names) {
    const auto kind = parse_invariant_name(name);
    ASSERT_TRUE(kind.has_value()) << name;
    EXPECT_EQ(invariant_name(*kind), name);
  }
  EXPECT_FALSE(parse_invariant_name("common_prefix").has_value());
  EXPECT_FALSE(parse_invariant_name("").has_value());
  EXPECT_FALSE(parse_invariant_name("chain-growt").has_value());
}

TEST(OracleConfig, ValidationRejectsUnusableConfigs) {
  OracleConfig nothing_armed;
  nothing_armed.common_prefix = false;
  EXPECT_THROW(validate_oracle_config(nothing_armed), ContractViolation);

  OracleConfig vacuous_growth;
  vacuous_growth.growth_window = 10;
  vacuous_growth.growth_min_blocks = 0;
  EXPECT_THROW(validate_oracle_config(vacuous_growth), ContractViolation);

  OracleConfig bad_ratio;
  bad_ratio.quality_window = 10;
  bad_ratio.quality_min_ratio = 1.5;
  EXPECT_THROW(validate_oracle_config(bad_ratio), ContractViolation);

  OracleConfig zero_slice;
  zero_slice.slice_rounds = 0;
  EXPECT_THROW(validate_oracle_config(zero_slice), ContractViolation);

  OracleConfig huge_slice;
  huge_slice.slice_rounds = (std::uint64_t{1} << 20) + 1;
  EXPECT_THROW(validate_oracle_config(huge_slice), ContractViolation);

  OracleConfig fine;
  fine.growth_window = 64;
  fine.quality_window = 64;
  fine.quality_min_ratio = 0.1;
  EXPECT_NO_THROW(validate_oracle_config(fine));
}

// The exactness property behind the whole replay design: the oracle's
// per-round depth is max(pairwise end-of-round divergence, deepest reorg
// this round), and ConsistencyTracker::violation_depth is the running
// max of exactly those two quantities — so the accumulated oracle depth
// must equal the tracker's answer bit-for-bit, on every strategy and
// network model.  And at the *first* round whose depth exceeds T, a
// truncated rerun to that round has violation_depth == measured (all
// earlier rounds were ≤ T < measured).
TEST(OracleCrossCheck, MatchesTrackerAcrossStrategiesAndNetworks) {
  const std::vector<std::string> strategies = {
      "null",           "max-delay",     "private-withhold", "balance-attack",
      "selfish-mining", "fork-balancer", "delay-saturate"};
  const std::vector<std::string> networks = {"strategy", "uniform", "bursty"};

  std::uint64_t seed = 9000;
  std::size_t violations_seen = 0;
  for (const std::string& network : networks) {
    for (const std::string& strategy : strategies) {
      ++seed;
      const EngineConfig config = violent_config(seed);

      OracleConfig oracle_config;
      oracle_config.common_prefix_t = 2;  // low T: violations are common
      oracle_config.slice_rounds = 32;
      InvariantOracle oracle(oracle_config);

      ExecutionEngine engine(config, build(network, strategy, config));
      const RunResult result = engine.run(oracle.observer());

      const std::string label = network + " × " + strategy;
      EXPECT_EQ(oracle.max_round_depth(), result.violation_depth) << label;
      EXPECT_EQ(oracle.rounds_observed(), config.rounds) << label;
      if (!oracle.violated()) continue;
      ++violations_seen;

      const OracleViolation& violation = oracle.first_violation();
      EXPECT_GT(violation.measured, oracle_config.common_prefix_t) << label;
      EXPECT_EQ(violation.bound, oracle_config.common_prefix_t) << label;

      // Truncated rerun: tracker depth at the first violating round is
      // the oracle's measured depth exactly.
      EngineConfig truncated = config;
      truncated.rounds = violation.round;
      ExecutionEngine rerun(truncated, build(network, strategy, truncated));
      const RunResult rerun_result = rerun.run();
      EXPECT_EQ(rerun_result.violation_depth, violation.measured) << label;

      // And one round earlier the depth was still within the bound.
      if (violation.round > 1) {
        EngineConfig before = config;
        before.rounds = violation.round - 1;
        ExecutionEngine prior(before, build(network, strategy, before));
        EXPECT_LE(prior.run().violation_depth,
                  oracle_config.common_prefix_t)
            << label;
      }
    }
  }
  // The property test must not pass vacuously: this grid is violent
  // enough that several cells trip the oracle.
  EXPECT_GE(violations_seen, 3u);
}

TEST(Oracle, ArmedRunIsBitIdenticalToUnarmed) {
  const EngineConfig config = violent_config(4242);

  ExecutionEngine plain(config, build("strategy", "fork-balancer", config));
  const RunResult unarmed = plain.run();

  OracleConfig oracle_config;
  oracle_config.common_prefix_t = 2;
  InvariantOracle oracle(oracle_config);
  ExecutionEngine observed(config,
                           build("strategy", "fork-balancer", config));
  const RunResult armed = observed.run(oracle.observer());

  EXPECT_EQ(armed.honest_counts, unarmed.honest_counts);
  EXPECT_EQ(armed.honest_blocks_total, unarmed.honest_blocks_total);
  EXPECT_EQ(armed.adversary_blocks_total, unarmed.adversary_blocks_total);
  EXPECT_EQ(armed.convergence_opportunities,
            unarmed.convergence_opportunities);
  EXPECT_EQ(armed.max_reorg_depth, unarmed.max_reorg_depth);
  EXPECT_EQ(armed.max_divergence, unarmed.max_divergence);
  EXPECT_EQ(armed.disagreement_rounds, unarmed.disagreement_rounds);
  EXPECT_EQ(armed.violation_depth, unarmed.violation_depth);
  EXPECT_EQ(armed.chain.best_height, unarmed.chain.best_height);
  EXPECT_EQ(armed.chain.growth_per_round, unarmed.chain.growth_per_round);
  EXPECT_EQ(armed.chain.honest_blocks_in_chain,
            unarmed.chain.honest_blocks_in_chain);
  EXPECT_EQ(armed.chain.adversary_blocks_in_chain,
            unarmed.chain.adversary_blocks_in_chain);
  EXPECT_EQ(armed.chain.quality, unarmed.chain.quality);
  EXPECT_EQ(armed.store_size, unarmed.store_size);
  // The oracle reads through the same instrumented store, so in
  // telemetry-ON builds its own binary-lifting lookups show up in the
  // ancestry-queries diagnostic counter; every counter that measures
  // *simulation* work must still match exactly.
  const auto ancestry =
      static_cast<std::size_t>(telemetry::Counter::kAncestryQueries);
  for (std::size_t i = 0; i < armed.telemetry.counters.size(); ++i) {
    if (i == ancestry) continue;
    EXPECT_EQ(armed.telemetry.counters[i], unarmed.telemetry.counters[i])
        << "counter " << i;
  }
  EXPECT_GE(armed.telemetry.counters[ancestry],
            unarmed.telemetry.counters[ancestry]);
}

TEST(Oracle, FreezesFirstViolationWithViewsAndBoundedSlice) {
  const EngineConfig config = violent_config(777);
  OracleConfig oracle_config;
  oracle_config.common_prefix_t = 2;
  oracle_config.slice_rounds = 16;
  InvariantOracle oracle(oracle_config);
  ExecutionEngine engine(config, build("strategy", "fork-balancer", config));
  const RunResult result = engine.run(oracle.observer());

  ASSERT_TRUE(oracle.violated());
  const OracleViolation& violation = oracle.first_violation();
  EXPECT_EQ(violation.kind, InvariantKind::kCommonPrefix);
  EXPECT_GE(violation.round, 1u);
  EXPECT_LE(violation.round, config.rounds);
  // The run kept going after the freeze, so the whole-run depth can only
  // be at least the frozen measurement.
  EXPECT_GE(result.violation_depth, violation.measured);

  const auto& views = oracle.violating_views();
  ASSERT_EQ(views.size(), engine.honest_count());
  for (std::size_t m = 0; m < views.size(); ++m) {
    EXPECT_EQ(views[m].miner, m);
    EXPECT_EQ(views[m].height, engine.store().height_of(views[m].tip));
    EXPECT_EQ(views[m].hash, engine.store().hash_of(views[m].tip));
  }
  EXPECT_LT(violation.view_a, views.size());
  EXPECT_LT(violation.view_b, views.size());

  const auto& slice = oracle.violation_slice();
  const std::uint64_t expected =
      std::min<std::uint64_t>(violation.round, oracle_config.slice_rounds);
  ASSERT_EQ(slice.size(), expected);
  for (std::size_t i = 0; i < slice.size(); ++i) {
    EXPECT_EQ(slice[i].round, violation.round - expected + 1 + i);
  }
  EXPECT_EQ(slice.back().round, violation.round);
  // The last slice record's running violation depth is the frozen
  // measurement itself: the first violating round sets the new maximum.
  EXPECT_EQ(slice.back().violation_depth, violation.measured);
}

TEST(Oracle, ChainGrowthWindowFires) {
  const EngineConfig config = violent_config(31);
  OracleConfig oracle_config;
  oracle_config.common_prefix = false;
  oracle_config.growth_window = 10;
  oracle_config.growth_min_blocks = 1000;  // unsatisfiable: fires at once
  InvariantOracle oracle(oracle_config);
  ExecutionEngine engine(config, build("strategy", "null", config));
  (void)engine.run(oracle.observer());

  ASSERT_TRUE(oracle.violated());
  const OracleViolation& violation = oracle.first_violation();
  EXPECT_EQ(violation.kind, InvariantKind::kChainGrowth);
  // The first checkable round is window + 1.
  EXPECT_EQ(violation.round, oracle_config.growth_window + 1);
  EXPECT_EQ(violation.bound, oracle_config.growth_min_blocks);
  EXPECT_LT(violation.measured, violation.bound);
}

TEST(Oracle, ChainQualityWindowFires) {
  // Fork-balancer publishes adversary siblings that land on the best
  // chain, so a quality floor of 1.0 (all-honest) must fail once the
  // chain is a window deep.
  const EngineConfig config = violent_config(57);
  OracleConfig oracle_config;
  oracle_config.common_prefix = false;
  oracle_config.quality_window = 8;
  oracle_config.quality_min_ratio = 1.0;
  InvariantOracle oracle(oracle_config);
  ExecutionEngine engine(config, build("strategy", "fork-balancer", config));
  (void)engine.run(oracle.observer());

  ASSERT_TRUE(oracle.violated());
  const OracleViolation& violation = oracle.first_violation();
  EXPECT_EQ(violation.kind, InvariantKind::kChainQuality);
  EXPECT_EQ(violation.bound, oracle_config.quality_window);  // ceil(1.0·8)
  EXPECT_LT(violation.measured, violation.bound);
}

TEST(Oracle, MaxRoundDepthKeepsAccumulatingAfterTheFreeze) {
  const EngineConfig config = violent_config(4242);
  OracleConfig oracle_config;
  oracle_config.common_prefix_t = 2;
  InvariantOracle oracle(oracle_config);
  ExecutionEngine engine(config, build("strategy", "fork-balancer", config));
  const RunResult result = engine.run(oracle.observer());

  ASSERT_TRUE(oracle.violated());
  // This cell's depth keeps growing long past the first violation; the
  // frozen measurement must stay put while the running max follows the
  // tracker to the end.
  EXPECT_EQ(oracle.max_round_depth(), result.violation_depth);
  EXPECT_LT(oracle.first_violation().measured, oracle.max_round_depth());
}

TEST(Oracle, AccessorsRequireAViolation) {
  OracleConfig oracle_config;
  InvariantOracle oracle(oracle_config);
  EXPECT_FALSE(oracle.violated());
  EXPECT_THROW((void)oracle.first_violation(), ContractViolation);
  EXPECT_THROW((void)oracle.violating_views(), ContractViolation);
  EXPECT_THROW((void)oracle.violation_slice(), ContractViolation);
}

}  // namespace
}  // namespace neatbound::sim
