#include <cmath>
#include <gtest/gtest.h>
#include <memory>

#include "sim/engine.hpp"
#include "sim/metrics.hpp"
#include "sim/strategies.hpp"

namespace neatbound::sim {
namespace {

using protocol::Block;
using protocol::BlockIndex;
using protocol::BlockStore;
using protocol::kGenesisIndex;

BlockIndex append(BlockStore& store, BlockIndex parent,
                  protocol::HashValue hash,
                  protocol::MinerClass who = protocol::MinerClass::kHonest) {
  Block b;
  b.hash = hash;
  b.parent_hash = store.block(parent).hash;
  b.round = store.block(parent).round + 1;
  b.miner_class = who;
  return store.add(std::move(b));
}

TEST(DagMetrics, EmptyStore) {
  const BlockStore store;
  const DagMetrics m = measure_dag(store, kGenesisIndex);
  EXPECT_EQ(m.total_blocks, 0u);
  EXPECT_EQ(m.orphan_rate, 0.0);
}

TEST(DagMetrics, LinearChainHasNoForks) {
  BlockStore store;
  BlockIndex tip = kGenesisIndex;
  for (protocol::HashValue h = 1; h <= 5; ++h) tip = append(store, tip, h);
  const DagMetrics m = measure_dag(store, tip);
  EXPECT_EQ(m.total_blocks, 5u);
  EXPECT_EQ(m.max_height, 5u);
  EXPECT_EQ(m.fork_heights, 0u);
  EXPECT_EQ(m.max_width, 1u);
  EXPECT_EQ(m.honest_off_chain, 0u);
  EXPECT_EQ(m.orphan_rate, 0.0);
}

TEST(DagMetrics, ForkCountsWidthAndOrphans) {
  BlockStore store;
  const BlockIndex a = append(store, kGenesisIndex, 1);
  const BlockIndex b = append(store, kGenesisIndex, 2);  // fork at height 1
  const BlockIndex a2 = append(store, a, 3);
  (void)append(store, b, 4, protocol::MinerClass::kAdversary);
  const DagMetrics m = measure_dag(store, a2);
  EXPECT_EQ(m.total_blocks, 4u);
  EXPECT_EQ(m.max_height, 2u);
  EXPECT_EQ(m.fork_heights, 2u);  // heights 1 and 2 both have two blocks
  EXPECT_EQ(m.max_width, 2u);
  // Honest blocks: a, b, a2; off chain: b only.
  EXPECT_EQ(m.honest_off_chain, 1u);
  EXPECT_NEAR(m.orphan_rate, 1.0 / 3.0, 1e-12);
}

TEST(DagMetrics, OrphanRateMatchesDeltaTheory) {
  // Under max-delay delivery, honest work is wasted at rate
  // ≈ 1 − g/α where g is the growth rate; check the engine's DAG agrees
  // with its own growth accounting.
  EngineConfig config;
  config.miner_count = 30;
  config.adversary_fraction = 0.0;
  config.p = 0.004;
  config.delta = 6;
  config.rounds = 30000;
  config.seed = 29;
  ExecutionEngine engine(config,
                         std::make_unique<MaxDelayAdversary>(config.delta));
  const RunResult result = engine.run();
  const DagMetrics dag = measure_dag(engine.store(), engine.best_honest_tip());
  // blocks mined = on-chain + off-chain (all honest here).
  EXPECT_EQ(dag.total_blocks, result.honest_blocks_total);
  EXPECT_EQ(dag.honest_off_chain + result.chain.best_height +
                (engine.store().height_of(engine.best_honest_tip()) -
                 result.chain.best_height),
            result.honest_blocks_total);
  // Rate identity: orphan_rate ≈ 1 − growth/ (blocks per round).
  const double blocks_per_round =
      static_cast<double>(result.honest_blocks_total) /
      static_cast<double>(config.rounds);
  const double predicted = 1.0 - result.chain.growth_per_round /
                                     blocks_per_round;
  EXPECT_NEAR(dag.orphan_rate, predicted, 0.02);
  EXPECT_GT(dag.fork_heights, 0u);  // Δ = 6 with busy mining must fork
}

TEST(DagMetrics, QuietNetworkBarelyForks) {
  EngineConfig config;
  config.miner_count = 30;
  config.adversary_fraction = 0.0;
  config.p = 0.0003;  // c large: rarely simultaneous blocks
  config.delta = 2;
  config.rounds = 30000;
  config.seed = 31;
  ExecutionEngine engine(config, std::make_unique<NullAdversary>());
  (void)engine.run();
  const DagMetrics dag = measure_dag(engine.store(), engine.best_honest_tip());
  EXPECT_LT(dag.orphan_rate, 0.05);
}

}  // namespace
}  // namespace neatbound::sim
