#include <cmath>
#include <gtest/gtest.h>

#include "chains/convergence.hpp"
#include "sim/aggregate.hpp"
#include "sim/runner.hpp"
#include "support/contracts.hpp"

namespace neatbound::sim {
namespace {

AggregateConfig base_config() {
  AggregateConfig config;
  config.honest_trials = 150;
  config.adversary_trials = 50;
  config.p = 0.001;
  config.delta = 4;
  config.rounds = 100000;
  config.seed = 21;
  return config;
}

TEST(Aggregate, OnlineCounterMatchesOfflineRecount) {
  // The online opportunity counter must agree exactly with the offline
  // pattern scan on the same trace.
  std::vector<std::uint32_t> trace;
  const AggregateResult result = run_aggregate_traced(base_config(), trace);
  EXPECT_EQ(trace.size(), base_config().rounds);
  EXPECT_EQ(result.convergence_opportunities,
            chains::count_convergence_opportunities(trace,
                                                    base_config().delta));
}

TEST(Aggregate, Deterministic) {
  const AggregateResult a = run_aggregate(base_config());
  const AggregateResult b = run_aggregate(base_config());
  EXPECT_EQ(a.honest_blocks, b.honest_blocks);
  EXPECT_EQ(a.adversary_blocks, b.adversary_blocks);
  EXPECT_EQ(a.convergence_opportunities, b.convergence_opportunities);
}

TEST(Aggregate, HonestBlockMeanMatchesBinomial) {
  const AggregateResult result = run_aggregate(base_config());
  const double expected = 150.0 * 0.001 * 100000.0;  // 15000
  EXPECT_NEAR(static_cast<double>(result.honest_blocks), expected,
              5.0 * std::sqrt(expected));
}

TEST(Aggregate, AdversaryBlockMeanMatchesEq27) {
  // E[A] = T·p·νn (Eq. 27).
  const AggregateResult result = run_aggregate(base_config());
  const double expected = 50.0 * 0.001 * 100000.0;  // 5000
  EXPECT_NEAR(static_cast<double>(result.adversary_blocks), expected,
              5.0 * std::sqrt(expected));
}

TEST(Aggregate, ConvergenceRateMatchesEq26) {
  // Empirical count across seeds vs T·ᾱ^{2Δ}α₁, 5σ band.
  AggregateConfig config = base_config();
  config.rounds = 200000;
  const double abar = std::pow(1.0 - config.p, config.honest_trials);
  const double alpha1 = config.p * config.honest_trials *
                        std::pow(1.0 - config.p, config.honest_trials - 1);
  const double rate = std::pow(abar, 2.0 * 4.0) * alpha1;
  const double expected = rate * static_cast<double>(config.rounds);

  double total = 0.0;
  const int seeds = 16;
  for (int k = 0; k < seeds; ++k) {
    config.seed = 1000 + static_cast<std::uint64_t>(k);
    total += static_cast<double>(
        run_aggregate(config).convergence_opportunities);
  }
  const double mean = total / seeds;
  // Counts are nearly Poisson; sd of the mean ≈ sqrt(expected/seeds).
  EXPECT_NEAR(mean, expected, 5.0 * std::sqrt(expected / seeds));
}

TEST(Aggregate, H1RoundsMatchAlpha1) {
  const AggregateResult result = run_aggregate(base_config());
  const double alpha1 = 0.001 * 150.0 * std::pow(0.999, 149.0);
  const double expected = alpha1 * 100000.0;
  EXPECT_NEAR(static_cast<double>(result.h1_rounds), expected,
              5.0 * std::sqrt(expected));
}

TEST(Aggregate, HRoundsMatchAlpha) {
  const AggregateResult result = run_aggregate(base_config());
  const double alpha = 1.0 - std::pow(0.999, 150.0);
  const double expected = alpha * 100000.0;
  EXPECT_NEAR(static_cast<double>(result.h_rounds), expected,
              5.0 * std::sqrt(expected));
}

TEST(Aggregate, ZeroAdversaryAllowed) {
  AggregateConfig config = base_config();
  config.adversary_trials = 0;
  const AggregateResult result = run_aggregate(config);
  EXPECT_EQ(result.adversary_blocks, 0u);
}

TEST(Aggregate, ConfigValidation) {
  AggregateConfig config = base_config();
  config.p = 0.0;
  EXPECT_THROW((void)run_aggregate(config), ContractViolation);
  config = base_config();
  config.rounds = 0;
  EXPECT_THROW((void)run_aggregate(config), ContractViolation);
  config = base_config();
  config.honest_trials = 0;
  EXPECT_THROW((void)run_aggregate(config), ContractViolation);
}

// --- runner ---------------------------------------------------------------

TEST(Runner, AggregatesAcrossSeeds) {
  ExperimentConfig config;
  config.engine.miner_count = 16;
  config.engine.adversary_fraction = 0.25;
  config.engine.p = 0.003;
  config.engine.delta = 2;
  config.engine.rounds = 3000;
  config.adversary = AdversaryKind::kPrivateWithhold;
  config.seeds = 5;
  const ExperimentSummary summary = run_experiment(config, /*violation_t=*/6);
  EXPECT_EQ(summary.convergence_opportunities.count(), 5u);
  EXPECT_EQ(summary.chain_quality.count(), 5u);
  EXPECT_GT(summary.honest_blocks.mean(), 0.0);
  EXPECT_GE(summary.violation_exceeds_t.mean(), 0.0);
  EXPECT_LE(summary.violation_exceeds_t.mean(), 1.0);
}

TEST(Runner, CustomFactoryReceivesConfig) {
  ExperimentConfig config;
  config.engine.miner_count = 12;
  config.engine.adversary_fraction = 0.25;
  config.engine.p = 0.002;
  config.engine.delta = 2;
  config.engine.rounds = 500;
  config.seeds = 2;
  int calls = 0;
  const ExperimentSummary summary = run_experiment_with(
      config, 3, [&calls](const EngineConfig& engine_config) {
        ++calls;
        EXPECT_EQ(engine_config.miner_count, 12u);
        return std::make_unique<NullAdversary>();
      });
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(summary.adversary_blocks.mean(), 0.0);
}

TEST(Runner, SeedsVaryAcrossRepetitions) {
  ExperimentConfig config;
  config.engine.miner_count = 12;
  config.engine.adversary_fraction = 0.0;
  config.engine.p = 0.01;
  config.engine.delta = 2;
  config.engine.rounds = 2000;
  config.adversary = AdversaryKind::kNull;
  config.seeds = 6;
  const ExperimentSummary summary = run_experiment(config, 3);
  // With six independent seeds the per-run block counts almost surely
  // differ, so the variance is positive.
  EXPECT_GT(summary.honest_blocks.variance(), 0.0);
}

}  // namespace
}  // namespace neatbound::sim
