#include <gtest/gtest.h>
#include <memory>

#include "sim/engine.hpp"
#include "sim/environment.hpp"
#include "sim/strategies.hpp"

namespace neatbound::sim {
namespace {

EngineConfig config_for(double nu, double p, std::uint64_t rounds) {
  EngineConfig config;
  config.miner_count = 20;
  config.adversary_fraction = nu;
  config.p = p;
  config.delta = 3;
  config.rounds = rounds;
  config.seed = 99;
  return config;
}

TEST(Environment, SequentialMessagesAreUnique) {
  SequentialTransactionEnvironment env;
  const std::string a = env.message_for(1, 0);
  const std::string b = env.message_for(1, 0);
  const std::string c = env.message_for(2, 5);
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
  EXPECT_NE(a.find("tx@1#0"), std::string::npos);
}

TEST(Environment, BlocksCarryMessages) {
  ExecutionEngine engine(config_for(0.0, 0.005, 3000),
                         std::make_unique<NullAdversary>(),
                         std::make_unique<SequentialTransactionEnvironment>());
  const RunResult result = engine.run();
  ASSERT_GT(result.honest_blocks_total, 0u);
  const auto ledger =
      engine.store().extract_messages(engine.best_honest_tip());
  EXPECT_EQ(ledger.size(), engine.store().height_of(engine.best_honest_tip()));
  // Every entry is a transaction batch from Z.
  for (const auto& msg : ledger) {
    EXPECT_EQ(msg.rfind("tx@", 0), 0u) << msg;
  }
}

TEST(Environment, WithoutEnvironmentLedgerIsEmpty) {
  ExecutionEngine engine(config_for(0.0, 0.005, 2000),
                         std::make_unique<NullAdversary>());
  (void)engine.run();
  EXPECT_TRUE(
      engine.store().extract_messages(engine.best_honest_tip()).empty());
}

TEST(LedgerAgreement, IdenticalTipsAgreeFully) {
  ExecutionEngine engine(config_for(0.0, 0.002, 4000),
                         std::make_unique<NullAdversary>(),
                         std::make_unique<SequentialTransactionEnvironment>());
  (void)engine.run();
  // Force agreement by measuring the same tip twice.
  const protocol::BlockIndex tip = engine.best_honest_tip();
  const std::vector<protocol::BlockIndex> tips = {tip, tip};
  const LedgerAgreement agreement =
      measure_ledger_agreement(engine.store(), tips);
  EXPECT_EQ(agreement.suffix_disagreement, 0u);
  EXPECT_EQ(agreement.common_prefix, agreement.max_length);
}

TEST(LedgerAgreement, HonestRunHasShallowSuffixDisagreement) {
  // The ledger analogue of the consistency property: honest miners may
  // disagree only about a bounded trailing segment.
  ExecutionEngine engine(config_for(0.0, 0.005, 6000),
                         std::make_unique<NullAdversary>(),
                         std::make_unique<SequentialTransactionEnvironment>());
  (void)engine.run();
  const LedgerAgreement agreement =
      measure_ledger_agreement(engine.store(), engine.honest_tips());
  EXPECT_GT(agreement.max_length, 10u);
  EXPECT_LE(agreement.suffix_disagreement, 3u);
}

TEST(LedgerAgreement, WithholdingAttackDeepensDisagreementDepth) {
  // Under a strong withholding adversary the trailing disagreement grows;
  // the metric must pick that up (compare against the benign run above).
  EngineConfig config = config_for(0.45, 0.008, 6000);
  config.miner_count = 40;
  ExecutionEngine engine(config,
                         std::make_unique<PrivateWithholdAdversary>(),
                         std::make_unique<SequentialTransactionEnvironment>());
  const RunResult result = engine.run();
  // Reorgs of honest blocks strip their messages out of the ledger; the
  // run must have seen deep reorgs for this test to be meaningful.
  EXPECT_GE(result.max_reorg_depth, 2u);
}

TEST(LedgerAgreement, EmptyTipsYieldZero) {
  protocol::BlockStore store;
  const std::vector<protocol::BlockIndex> none;
  const LedgerAgreement agreement = measure_ledger_agreement(store, none);
  EXPECT_EQ(agreement.common_prefix, 0u);
  EXPECT_EQ(agreement.max_length, 0u);
}

}  // namespace
}  // namespace neatbound::sim
