#include <gtest/gtest.h>

#include "sim/runner.hpp"

namespace neatbound::sim {
namespace {

ExperimentConfig small_experiment() {
  ExperimentConfig config;
  config.engine.miner_count = 16;
  config.engine.adversary_fraction = 0.25;
  config.engine.p = 0.004;
  config.engine.delta = 2;
  config.engine.rounds = 4000;
  config.adversary = AdversaryKind::kPrivateWithhold;
  config.seeds = 8;
  config.base_seed = 4242;
  return config;
}

TEST(ParallelRunner, BitIdenticalToSerial) {
  const auto config = small_experiment();
  const ExperimentSummary serial = run_experiment(config, 6);
  const ExperimentSummary parallel = run_experiment_parallel(config, 6, 4);
  EXPECT_EQ(serial.convergence_opportunities.count(),
            parallel.convergence_opportunities.count());
  EXPECT_DOUBLE_EQ(serial.convergence_opportunities.mean(),
                   parallel.convergence_opportunities.mean());
  EXPECT_DOUBLE_EQ(serial.adversary_blocks.mean(),
                   parallel.adversary_blocks.mean());
  EXPECT_DOUBLE_EQ(serial.honest_blocks.variance(),
                   parallel.honest_blocks.variance());
  EXPECT_DOUBLE_EQ(serial.violation_depth.max(),
                   parallel.violation_depth.max());
  EXPECT_DOUBLE_EQ(serial.chain_quality.mean(), parallel.chain_quality.mean());
  EXPECT_DOUBLE_EQ(serial.violation_exceeds_t.mean(),
                   parallel.violation_exceeds_t.mean());
}

TEST(ParallelRunner, SingleThreadFallsBackToSerial) {
  const auto config = small_experiment();
  const ExperimentSummary a = run_experiment(config, 6);
  const ExperimentSummary b = run_experiment_parallel(config, 6, 1);
  EXPECT_DOUBLE_EQ(a.honest_blocks.mean(), b.honest_blocks.mean());
}

TEST(ParallelRunner, MoreThreadsThanSeeds) {
  ExperimentConfig config = small_experiment();
  config.seeds = 2;
  const ExperimentSummary summary = run_experiment_parallel(config, 6, 16);
  EXPECT_EQ(summary.honest_blocks.count(), 2u);
}

TEST(ParallelRunner, DefaultThreadCountWorks) {
  const auto config = small_experiment();
  const ExperimentSummary summary = run_experiment_parallel(config, 6);
  EXPECT_EQ(summary.honest_blocks.count(), config.seeds);
}

}  // namespace
}  // namespace neatbound::sim
