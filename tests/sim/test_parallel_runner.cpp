#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "sim/runner.hpp"
#include "sim/strategies.hpp"

namespace neatbound::sim {
namespace {

ExperimentConfig small_experiment() {
  ExperimentConfig config;
  config.engine.miner_count = 16;
  config.engine.adversary_fraction = 0.25;
  config.engine.p = 0.004;
  config.engine.delta = 2;
  config.engine.rounds = 4000;
  config.adversary = AdversaryKind::kPrivateWithhold;
  config.seeds = 8;
  config.base_seed = 4242;
  return config;
}

TEST(ParallelRunner, BitIdenticalToSerial) {
  const auto config = small_experiment();
  const ExperimentSummary serial = run_experiment(config, 6);
  const ExperimentSummary parallel = run_experiment_parallel(config, 6, 4);
  EXPECT_EQ(serial.convergence_opportunities.count(),
            parallel.convergence_opportunities.count());
  EXPECT_DOUBLE_EQ(serial.convergence_opportunities.mean(),
                   parallel.convergence_opportunities.mean());
  EXPECT_DOUBLE_EQ(serial.adversary_blocks.mean(),
                   parallel.adversary_blocks.mean());
  EXPECT_DOUBLE_EQ(serial.honest_blocks.variance(),
                   parallel.honest_blocks.variance());
  EXPECT_DOUBLE_EQ(serial.violation_depth.max(),
                   parallel.violation_depth.max());
  EXPECT_DOUBLE_EQ(serial.chain_quality.mean(), parallel.chain_quality.mean());
  EXPECT_DOUBLE_EQ(serial.violation_exceeds_t.mean(),
                   parallel.violation_exceeds_t.mean());
}

TEST(ParallelRunner, SingleThreadFallsBackToSerial) {
  const auto config = small_experiment();
  const ExperimentSummary a = run_experiment(config, 6);
  const ExperimentSummary b = run_experiment_parallel(config, 6, 1);
  EXPECT_DOUBLE_EQ(a.honest_blocks.mean(), b.honest_blocks.mean());
}

TEST(ParallelRunner, MoreThreadsThanSeeds) {
  ExperimentConfig config = small_experiment();
  config.seeds = 2;
  const ExperimentSummary summary = run_experiment_parallel(config, 6, 16);
  EXPECT_EQ(summary.honest_blocks.count(), 2u);
}

TEST(ParallelRunner, DefaultThreadCountWorks) {
  const auto config = small_experiment();
  const ExperimentSummary summary = run_experiment_parallel(config, 6);
  EXPECT_EQ(summary.honest_blocks.count(), config.seeds);
}

TEST(ParallelRunner, CustomFactoryBitIdenticalToSerial) {
  const auto config = small_experiment();
  const auto factory = [](const EngineConfig& engine_config) {
    return std::make_unique<MaxDelayAdversary>(engine_config.delta);
  };
  const ExperimentSummary serial = run_experiment_with(config, 6, factory);
  const ExperimentSummary parallel =
      run_experiment_parallel_with(config, 6, factory, 4);
  EXPECT_EQ(serial.honest_blocks.count(), parallel.honest_blocks.count());
  EXPECT_DOUBLE_EQ(serial.honest_blocks.mean(), parallel.honest_blocks.mean());
  EXPECT_DOUBLE_EQ(serial.chain_growth.variance(),
                   parallel.chain_growth.variance());
}

// Regression: a throwing factory used to escape the worker thread and
// std::terminate the process; now the first exception is captured, all
// workers join, and it rethrows here.
TEST(ParallelRunner, ThrowingFactoryRethrowsInCaller) {
  const auto config = small_experiment();
  EXPECT_THROW(
      (void)run_experiment_parallel_with(
          config, 6,
          [](const EngineConfig&) -> std::unique_ptr<Adversary> {
            throw std::runtime_error("adversary factory failure");
          },
          4),
      std::runtime_error);
}

TEST(ParallelRunner, ThrowingFactoryMessageSurvives) {
  ExperimentConfig config = small_experiment();
  config.seeds = 6;
  std::atomic<std::uint32_t> calls{0};
  try {
    (void)run_experiment_parallel_with(
        config, 6,
        [&](const EngineConfig&) -> std::unique_ptr<Adversary> {
          if (calls.fetch_add(1) == 2) {
            throw std::runtime_error("boom at seed 2");
          }
          return std::make_unique<NullAdversary>();
        },
        3);
    FAIL() << "expected run_experiment_parallel_with to throw";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "boom at seed 2");
  }
}

}  // namespace
}  // namespace neatbound::sim
