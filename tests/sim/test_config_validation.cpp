// validate_engine_config: every unusable parameter combination must be
// rejected with a ContractViolation naming the offending field — never a
// silent nonsense run.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "sim/engine.hpp"
#include "sim/strategies.hpp"
#include "support/contracts.hpp"

namespace neatbound::sim {
namespace {

EngineConfig good_config() {
  EngineConfig config;
  config.miner_count = 16;
  config.adversary_fraction = 0.25;
  config.p = 0.01;
  config.delta = 2;
  config.rounds = 100;
  config.seed = 1;
  return config;
}

void expect_rejected(const EngineConfig& config,
                     const std::string& expected_fragment) {
  try {
    validate_engine_config(config);
    FAIL() << "expected rejection mentioning \"" << expected_fragment
           << "\"";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find(expected_fragment),
              std::string::npos)
        << e.what();
  }
}

TEST(EngineConfigValidation, AcceptsSaneConfig) {
  EXPECT_NO_THROW(validate_engine_config(good_config()));
}

TEST(EngineConfigValidation, RejectsNuAtOrAboveHalfAndAboveOne) {
  EngineConfig config = good_config();
  config.adversary_fraction = 0.5;
  expect_rejected(config, "nu");
  config.adversary_fraction = 1.0;
  expect_rejected(config, "nu");
  config.adversary_fraction = 3.0;  // ν ≥ 1 is just deeper into the same
  expect_rejected(config, "nu");    // rejected region
  config.adversary_fraction = -0.1;
  expect_rejected(config, "nu");
}

TEST(EngineConfigValidation, RejectsZeroDelta) {
  EngineConfig config = good_config();
  config.delta = 0;
  expect_rejected(config, "delta");
}

TEST(EngineConfigValidation, RejectsPOutsideOpenUnitInterval) {
  EngineConfig config = good_config();
  config.p = 0.0;
  expect_rejected(config, "p must be in (0, 1)");
  config.p = 1.0;
  expect_rejected(config, "p must be in (0, 1)");
  config.p = -0.5;
  expect_rejected(config, "p must be in (0, 1)");
  config.p = 2.0;
  expect_rejected(config, "p must be in (0, 1)");
}

TEST(EngineConfigValidation, RejectsZeroRounds) {
  EngineConfig config = good_config();
  config.rounds = 0;
  expect_rejected(config, "rounds");
}

TEST(EngineConfigValidation, RejectsTooFewMiners) {
  EngineConfig config = good_config();
  config.miner_count = 3;
  expect_rejected(config, "n >= 4");
}

TEST(EngineConfigValidation, EngineConstructorRunsTheSameChecks) {
  EngineConfig config = good_config();
  config.p = 0.0;
  EXPECT_THROW(
      ExecutionEngine(config, std::make_unique<NullAdversary>()),
      ContractViolation);
  config = good_config();
  config.rounds = 0;
  EXPECT_THROW(
      ExecutionEngine(config, std::make_unique<NullAdversary>()),
      ContractViolation);
}

}  // namespace
}  // namespace neatbound::sim
