#include "sim/strategies.hpp"

#include <gtest/gtest.h>
#include <memory>

#include "sim/engine.hpp"

namespace neatbound::sim {
namespace {

TEST(Factory, ProducesEveryKind) {
  for (const AdversaryKind kind :
       {AdversaryKind::kNull, AdversaryKind::kMaxDelay,
        AdversaryKind::kPrivateWithhold, AdversaryKind::kBalanceAttack,
        AdversaryKind::kSelfishMining, AdversaryKind::kForkBalancer,
        AdversaryKind::kDelaySaturate}) {
    const auto adversary = make_adversary(kind, 10, 4);
    ASSERT_NE(adversary, nullptr);
    EXPECT_STREQ(adversary->name(), adversary_kind_name(kind));
  }
}

TEST(NullAdversary, ImmediateDelays) {
  NullAdversary adv;
  EXPECT_EQ(adv.honest_delay(0, 0, 1, 0), 1u);
}

TEST(MaxDelayAdversary, FullDelta) {
  MaxDelayAdversary adv(7);
  EXPECT_EQ(adv.honest_delay(0, 0, 1, 0), 7u);
}

TEST(PrivateWithhold, ForcesDeepReorgsWhenStrong) {
  // ν = 0.45 with c ≈ 1.4: the adversary out-mines the honest majority's
  // effective rate often enough to force reorgs ≥ 2 within 30k rounds.
  EngineConfig config;
  config.miner_count = 40;
  config.adversary_fraction = 0.45;
  config.p = 0.006;
  config.delta = 3;
  config.rounds = 30000;
  config.seed = 7;
  auto adversary = std::make_unique<PrivateWithholdAdversary>();
  const auto* observer = adversary.get();
  ExecutionEngine engine(config, std::move(adversary));
  const RunResult result = engine.run();
  EXPECT_GT(observer->successful_releases(), 0u);
  EXPECT_GE(result.max_reorg_depth, 2u);
  // Adversary blocks end up in honest chains after releases.
  EXPECT_LT(result.chain.quality, 1.0);
}

TEST(PrivateWithhold, HarmlessWhenWeak) {
  // ν = 0.1 with c = 12.5: private forks essentially never overtake.
  EngineConfig config;
  config.miner_count = 40;
  config.adversary_fraction = 0.1;
  config.p = 0.001;
  config.delta = 2;
  config.rounds = 20000;
  config.seed = 8;
  auto adversary = std::make_unique<PrivateWithholdAdversary>();
  const auto* observer = adversary.get();
  ExecutionEngine engine(config, std::move(adversary));
  const RunResult result = engine.run();
  EXPECT_LE(observer->successful_releases(), 1u);
  EXPECT_LE(result.violation_depth, 4u);
}

TEST(BalanceAttack, SustainsDivergenceWhenFavoured) {
  // PSS Remark 8.5 regime: 1/c > 1/ν − 1/μ.  With ν = 0.4, the RHS is
  // 2.5 − 1.67 = 0.83, so c < 1.2 suffices; use c ≈ 0.63.
  EngineConfig config;
  config.miner_count = 40;
  config.adversary_fraction = 0.4;
  config.p = 0.01;
  config.delta = 4;
  config.rounds = 8000;
  config.seed = 9;
  ExecutionEngine engine(
      config, std::make_unique<BalanceAttackAdversary>(24, config.delta));
  const RunResult result = engine.run();
  // The attack keeps two chains alive: divergence grows far beyond what a
  // benign run exhibits.
  EXPECT_GE(result.max_divergence, 8u);
  EXPECT_GT(result.disagreement_rounds, config.rounds / 2);
}

TEST(BalanceAttack, CollapsesWhenOutsideRegime) {
  // ν = 0.15 at c ≈ 4.2: 1/c = 0.24 < 1/ν − 1/μ = 5.5 — far outside the
  // attack regime; the two chains merge quickly and stay merged.
  EngineConfig config;
  config.miner_count = 40;
  config.adversary_fraction = 0.15;
  config.p = 0.0015;
  config.delta = 4;
  config.rounds = 20000;
  config.seed = 10;
  ExecutionEngine engine(
      config, std::make_unique<BalanceAttackAdversary>(34, config.delta));
  const RunResult result = engine.run();
  EXPECT_LE(result.max_divergence, 6u);
}

TEST(SelfishMining, DegradesChainQuality) {
  // ν = 0.4 selfish miner should capture a super-proportional chain share:
  // quality drops clearly below μ = 0.6 plus margin.
  EngineConfig config;
  config.miner_count = 40;
  config.adversary_fraction = 0.4;
  config.p = 0.002;
  config.delta = 2;
  config.rounds = 60000;
  config.seed = 11;
  ExecutionEngine engine(config, std::make_unique<SelfishMiningAdversary>());
  const RunResult result = engine.run();
  EXPECT_LT(result.chain.quality, 0.60);
  EXPECT_GT(result.chain.adversary_blocks_in_chain, 0u);
}

TEST(SelfishMining, NearHonestShareWhenWeak) {
  // A 10% selfish miner gains little; quality stays near μ = 0.9.
  EngineConfig config;
  config.miner_count = 40;
  config.adversary_fraction = 0.1;
  config.p = 0.002;
  config.delta = 2;
  config.rounds = 60000;
  config.seed = 12;
  ExecutionEngine engine(config, std::make_unique<SelfishMiningAdversary>());
  const RunResult result = engine.run();
  EXPECT_GT(result.chain.quality, 0.82);
}

TEST(ForkBalancer, SplitsAndSustainsDivergenceWhenFavoured) {
  // Same favourable regime as the balance attack (ν = 0.4, c well below
  // 1/ν − 1/μ): the equivocating balancer must split the network and keep
  // the halves apart for most of the run.
  EngineConfig config;
  config.miner_count = 40;
  config.adversary_fraction = 0.4;
  config.p = 0.01;
  config.delta = 4;
  config.rounds = 8000;
  config.seed = 13;
  auto adversary = std::make_unique<ForkBalancerAdversary>(24, config.delta);
  const auto* observer = adversary.get();
  ExecutionEngine engine(config, std::move(adversary));
  const RunResult result = engine.run();
  EXPECT_GT(observer->equivocations(), 0u);
  EXPECT_GE(result.max_divergence, 8u);
  EXPECT_GT(result.disagreement_rounds, config.rounds / 2);
}

TEST(ForkBalancer, DelaysAreGroupLocal) {
  ForkBalancerAdversary adversary(10, 6);
  // Miners [0,5) are group 0, [5,10) group 1.
  EXPECT_EQ(adversary.honest_delay(0, 0, 4, 0), 1u);   // same group
  EXPECT_EQ(adversary.honest_delay(0, 7, 9, 0), 1u);   // same group
  EXPECT_EQ(adversary.honest_delay(0, 0, 5, 0), 6u);   // cross group
  EXPECT_EQ(adversary.honest_delay(0, 9, 4, 0), 6u);   // cross group
}

TEST(DelaySaturate, ForcesReorgsAndKeepsALeadWhenStrong) {
  EngineConfig config;
  config.miner_count = 40;
  config.adversary_fraction = 0.45;
  config.p = 0.006;
  config.delta = 3;
  config.rounds = 30000;
  config.seed = 14;
  auto adversary = std::make_unique<DelaySaturatingWithholder>();
  const auto* observer = adversary.get();
  ExecutionEngine engine(config, std::move(adversary));
  const RunResult result = engine.run();
  EXPECT_GT(observer->released_blocks(), 0u);
  EXPECT_GE(result.max_reorg_depth, 1u);
  // Released adversary blocks displace honest ones in the public chain.
  EXPECT_LT(result.chain.quality, 1.0);
}

TEST(DelaySaturate, HarmlessWhenWeak) {
  EngineConfig config;
  config.miner_count = 40;
  config.adversary_fraction = 0.1;
  config.p = 0.001;
  config.delta = 2;
  config.rounds = 20000;
  config.seed = 15;
  ExecutionEngine engine(config,
                         std::make_unique<DelaySaturatingWithholder>());
  const RunResult result = engine.run();
  EXPECT_LE(result.violation_depth, 4u);
}

}  // namespace
}  // namespace neatbound::sim
