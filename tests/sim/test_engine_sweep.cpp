// Cross-product property sweep: every adversary strategy × a grid of
// engine configurations, asserting the universal invariants that must
// hold regardless of strategy or parameters.
#include <cmath>
#include <gtest/gtest.h>

#include "chains/convergence.hpp"
#include "protocol/validation.hpp"
#include "sim/engine.hpp"
#include "sim/strategies.hpp"

namespace neatbound::sim {
namespace {

struct SweepCase {
  AdversaryKind kind;
  std::uint32_t miners;
  double nu;
  std::uint64_t delta;
  double p;
};

class EngineSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(EngineSweep, UniversalInvariants) {
  const auto [kind, miners, nu, delta, p] = GetParam();
  EngineConfig config;
  config.miner_count = miners;
  config.adversary_fraction = nu;
  config.delta = delta;
  config.p = p;
  config.rounds = 4000;
  config.seed = 1234;
  const auto corrupted =
      static_cast<std::uint32_t>(std::llround(nu * miners));
  ExecutionEngine engine(
      config, make_adversary(kind, miners - corrupted, delta));
  const RunResult result = engine.run();

  // Counting identities.
  EXPECT_EQ(result.honest_counts.size(), config.rounds);
  std::uint64_t sum = 0;
  for (const auto c : result.honest_counts) sum += c;
  EXPECT_EQ(sum, result.honest_blocks_total);
  EXPECT_EQ(result.store_size,
            1 + result.honest_blocks_total + result.adversary_blocks_total);

  // Convergence opportunities are recountable from the trace.
  EXPECT_EQ(result.convergence_opportunities,
            chains::count_convergence_opportunities(result.honest_counts,
                                                    delta));

  // The chain the network agrees on is valid and at least as high as the
  // count of convergence opportunities (each adds one agreed block).
  const auto report = protocol::validate_chain(
      engine.store(), engine.best_honest_tip(), engine.oracle(),
      engine.target(), engine.validation_policy());
  EXPECT_TRUE(report.valid) << report.failure;
  EXPECT_GE(engine.store().height_of(engine.best_honest_tip()),
            result.convergence_opportunities);

  // Metrics are internally consistent.
  EXPECT_EQ(result.violation_depth,
            std::max(result.max_reorg_depth, result.max_divergence));
  EXPECT_GE(result.chain.quality, 0.0);
  EXPECT_LE(result.chain.quality, 1.0);
  EXPECT_EQ(result.chain.best_height,
            result.chain.honest_blocks_in_chain +
                result.chain.adversary_blocks_in_chain);

  // DAG accounting closes.
  const DagMetrics dag =
      measure_dag(engine.store(), engine.best_honest_tip());
  EXPECT_EQ(dag.total_blocks,
            result.honest_blocks_total + result.adversary_blocks_total);
  EXPECT_GE(dag.max_height, result.chain.best_height);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EngineSweep,
    ::testing::Values(
        SweepCase{AdversaryKind::kNull, 8, 0.25, 1, 0.02},
        SweepCase{AdversaryKind::kNull, 64, 0.1, 8, 0.0005},
        SweepCase{AdversaryKind::kMaxDelay, 16, 0.3, 2, 0.01},
        SweepCase{AdversaryKind::kMaxDelay, 40, 0.45, 6, 0.002},
        SweepCase{AdversaryKind::kPrivateWithhold, 16, 0.4, 1, 0.02},
        SweepCase{AdversaryKind::kPrivateWithhold, 48, 0.2, 4, 0.001},
        SweepCase{AdversaryKind::kBalanceAttack, 12, 0.3, 2, 0.01},
        SweepCase{AdversaryKind::kBalanceAttack, 40, 0.45, 8, 0.004},
        SweepCase{AdversaryKind::kSelfishMining, 16, 0.35, 2, 0.005},
        SweepCase{AdversaryKind::kSelfishMining, 32, 0.15, 4, 0.002},
        // Degenerate-ish corners: minimum miners, single-round delta,
        // heavy per-round block rate.
        SweepCase{AdversaryKind::kNull, 4, 0.25, 1, 0.2},
        SweepCase{AdversaryKind::kPrivateWithhold, 4, 0.25, 2, 0.1},
        SweepCase{AdversaryKind::kMaxDelay, 100, 0.49, 3, 0.01}));

}  // namespace
}  // namespace neatbound::sim
