#include "sim/miner_view.hpp"

#include <gtest/gtest.h>

namespace neatbound::sim {
namespace {

using protocol::Block;
using protocol::BlockIndex;
using protocol::BlockStore;
using protocol::kGenesisIndex;

BlockIndex append(BlockStore& store, BlockIndex parent,
                  protocol::HashValue hash) {
  Block b;
  b.hash = hash;
  b.parent_hash = store.block(parent).hash;
  b.round = store.block(parent).round + 1;
  return store.add(std::move(b));
}

TEST(MinerView, StartsAtGenesis) {
  const MinerView view;
  EXPECT_EQ(view.tip(), kGenesisIndex);
  EXPECT_TRUE(view.knows(kGenesisIndex));
}

TEST(MinerView, AdoptsLongerChain) {
  BlockStore store;
  MinerView view;
  const BlockIndex a = append(store, kGenesisIndex, 1);
  const AdoptionEvent e = view.deliver(a, store);
  EXPECT_TRUE(e.adopted);
  EXPECT_EQ(e.reorg_depth, 0u);  // pure extension
  EXPECT_EQ(view.tip(), a);
}

TEST(MinerView, FirstReceivedTieBreak) {
  BlockStore store;
  MinerView view;
  const BlockIndex a = append(store, kGenesisIndex, 1);
  const BlockIndex b = append(store, kGenesisIndex, 2);  // same height
  view.deliver(a, store);
  const AdoptionEvent e = view.deliver(b, store);
  EXPECT_FALSE(e.adopted);
  EXPECT_EQ(view.tip(), a);  // keeps first received
  EXPECT_TRUE(view.knows(b));
}

TEST(MinerView, ReorgDepthMeasuresAbandonedBlocks) {
  BlockStore store;
  MinerView view;
  // Own chain: g → a1 → a2.
  const BlockIndex a1 = append(store, kGenesisIndex, 1);
  const BlockIndex a2 = append(store, a1, 2);
  view.deliver(a1, store);
  view.deliver(a2, store);
  // Competing chain g → b1 → b2 → b3 (longer).
  const BlockIndex b1 = append(store, kGenesisIndex, 11);
  const BlockIndex b2 = append(store, b1, 12);
  const BlockIndex b3 = append(store, b2, 13);
  view.deliver(b1, store);
  view.deliver(b2, store);
  const AdoptionEvent e = view.deliver(b3, store);
  EXPECT_TRUE(e.adopted);
  EXPECT_EQ(e.reorg_depth, 2u);  // abandoned a1, a2
  EXPECT_EQ(view.tip(), b3);
}

TEST(MinerView, OrphanBufferedUntilParentArrives) {
  BlockStore store;
  MinerView view;
  const BlockIndex a = append(store, kGenesisIndex, 1);
  const BlockIndex b = append(store, a, 2);
  // Child delivered first: must not be adopted yet.
  AdoptionEvent e = view.deliver(b, store);
  EXPECT_FALSE(e.adopted);
  EXPECT_FALSE(view.knows(b));
  EXPECT_EQ(view.tip(), kGenesisIndex);
  // Parent arrives: both activate, tip jumps to the grandchild.
  e = view.deliver(a, store);
  EXPECT_TRUE(e.adopted);
  EXPECT_EQ(view.tip(), b);
  EXPECT_TRUE(view.knows(a));
  EXPECT_TRUE(view.knows(b));
}

TEST(MinerView, DeepOrphanChainActivatesInOneShot) {
  BlockStore store;
  MinerView view;
  std::vector<BlockIndex> chain;
  BlockIndex parent = kGenesisIndex;
  for (protocol::HashValue h = 1; h <= 6; ++h) {
    parent = append(store, parent, h);
    chain.push_back(parent);
  }
  // Deliver in reverse order: everything buffers until the first block.
  for (std::size_t i = chain.size(); i-- > 1;) {
    view.deliver(chain[i], store);
    EXPECT_EQ(view.tip(), kGenesisIndex);
  }
  view.deliver(chain[0], store);
  EXPECT_EQ(view.tip(), chain.back());
}

TEST(MinerView, DuplicateDeliveryIgnored) {
  BlockStore store;
  MinerView view;
  const BlockIndex a = append(store, kGenesisIndex, 1);
  EXPECT_TRUE(view.deliver(a, store).adopted);
  const AdoptionEvent again = view.deliver(a, store);
  EXPECT_FALSE(again.adopted);
  EXPECT_EQ(view.tip(), a);
}

// Duplicate delivery of a *still-buffered* orphan passes the knows()
// check, so buffer_orphan must not re-thread it: doing so would sever
// the sibling linked behind it in the parent's waiting list.  The
// adversary can trigger this by re-sending a withheld child while its
// parent is still unknown.
TEST(MinerView, DuplicateBufferedOrphanKeepsWaitingSibling) {
  BlockStore store;
  MinerView view;
  const BlockIndex p = append(store, kGenesisIndex, 1);
  const BlockIndex s = append(store, p, 2);
  const BlockIndex b = append(store, p, 3);
  view.deliver(s, store);  // buffers: p -> [s]
  view.deliver(b, store);  // buffers: p -> [b, s]
  view.deliver(b, store);  // duplicate of list head: must be a no-op
  view.deliver(p, store);  // parent arrives: both children activate
  EXPECT_TRUE(view.knows(p));
  EXPECT_TRUE(view.knows(b));
  EXPECT_TRUE(view.knows(s));
}

TEST(MinerView, DuplicateBufferedOrphanAtListTailIsNoOp) {
  BlockStore store;
  MinerView view;
  const BlockIndex p = append(store, kGenesisIndex, 1);
  const BlockIndex s = append(store, p, 2);
  const BlockIndex b = append(store, p, 3);
  view.deliver(s, store);  // buffers: p -> [s]
  view.deliver(b, store);  // buffers: p -> [b, s]
  view.deliver(s, store);  // duplicate of list tail: must not cycle/drop
  view.deliver(p, store);
  EXPECT_TRUE(view.knows(b));
  EXPECT_TRUE(view.knows(s));
  // Orphans buffered again after activation behave normally.
  const BlockIndex c = append(store, b, 4);
  const BlockIndex d = append(store, c, 5);
  view.deliver(d, store);
  EXPECT_FALSE(view.knows(d));
  view.deliver(c, store);
  EXPECT_TRUE(view.knows(c));
  EXPECT_TRUE(view.knows(d));
}

TEST(MinerView, ShorterChainNeverAdopted) {
  BlockStore store;
  MinerView view;
  const BlockIndex a1 = append(store, kGenesisIndex, 1);
  const BlockIndex a2 = append(store, a1, 2);
  view.deliver(a1, store);
  view.deliver(a2, store);
  const BlockIndex b1 = append(store, kGenesisIndex, 11);
  EXPECT_FALSE(view.deliver(b1, store).adopted);
  EXPECT_EQ(view.tip(), a2);
}

}  // namespace
}  // namespace neatbound::sim
