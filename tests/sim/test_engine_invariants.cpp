// Failure-injection / fuzz testing of the execution engine: a randomized
// adversary exercises every AdversaryOps operation with arbitrary (but
// legal) arguments across many seeds, and we assert the engine's global
// invariants afterwards:
//   * every block in the store is well-formed (PoW verifies, heights link),
//   * the Δ-delay contract held (no honest view is missing a block that was
//     first received by any honest player more than Δ rounds ago),
//   * counting identities (store size, per-class totals) hold,
//   * no honest view ever adopted a chain that shrinks.
#include <algorithm>
#include <gtest/gtest.h>
#include <memory>

#include "protocol/validation.hpp"
#include "sim/engine.hpp"
#include "sim/strategies.hpp"
#include "support/rng.hpp"

namespace neatbound::sim {
namespace {

/// Chaos monkey: mines on random parents, publishes random withheld blocks
/// to random recipients with random delays (including out-of-range delays
/// that the engine must clamp), sometimes sits idle.
class FuzzAdversary final : public Adversary {
 public:
  explicit FuzzAdversary(std::uint64_t seed) : rng_(seed) {}

  std::uint64_t honest_delay(std::uint64_t, std::uint32_t, std::uint32_t,
                             protocol::BlockIndex) override {
    // Deliberately out-of-range values: engine must clamp into [1, Δ].
    return rng_.uniform_below(20);
  }

  void act(AdversaryOps& ops) override {
    while (ops.remaining_queries() > 0) {
      const std::uint64_t choice = rng_.uniform_below(4);
      if (choice == 0 && !mine_targets_.empty()) {
        // Extend a random previously mined block.
        const auto parent = mine_targets_[rng_.uniform_below(
            mine_targets_.size())];
        if (const auto b = ops.try_mine_on(parent)) {
          mine_targets_.push_back(*b);
          withheld_.push_back(*b);
        }
      } else {
        // Mine on a random honest tip (or genesis).
        const auto tips = ops.honest_tips();
        const protocol::BlockIndex parent =
            rng_.uniform_below(4) == 0
                ? protocol::kGenesisIndex
                : tips[rng_.uniform_below(tips.size())];
        if (const auto b = ops.try_mine_on(parent)) {
          mine_targets_.push_back(*b);
          withheld_.push_back(*b);
        }
      }
      // Randomly publish some withheld block.
      if (!withheld_.empty() && rng_.uniform_below(3) == 0) {
        const std::size_t pick = rng_.uniform_below(withheld_.size());
        const protocol::BlockIndex block = withheld_[pick];
        if (rng_.uniform_below(2) == 0) {
          ops.publish_to_all(block, 1 + rng_.uniform_below(30));
        } else {
          ops.publish_to(
              static_cast<std::uint32_t>(
                  rng_.uniform_below(ops.honest_count())),
              block, 1 + rng_.uniform_below(30));
        }
        withheld_.erase(withheld_.begin() + static_cast<std::ptrdiff_t>(pick));
      }
    }
  }

  const char* name() const override { return "fuzz"; }

 private:
  Rng rng_;
  std::vector<protocol::BlockIndex> mine_targets_;
  std::vector<protocol::BlockIndex> withheld_;
};

class EngineFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineFuzz, InvariantsSurviveChaos) {
  const std::uint64_t seed = GetParam();
  // Both RNG disciplines must survive the same chaos; only the per-block
  // ≤-target certificate is mode-dependent (counter blocks carry none).
  for (const RngMode mode : {RngMode::kCounter, RngMode::kLegacy}) {
    SCOPED_TRACE(mode == RngMode::kCounter ? "counter" : "legacy");
    EngineConfig config;
    config.miner_count = 24;
    config.adversary_fraction = 0.33;
    config.p = 0.01;  // busy: plenty of blocks and races
    config.delta = 4;
    config.rounds = 3000;
    config.seed = seed;
    config.rng_mode = mode;
    ExecutionEngine engine(config, std::make_unique<FuzzAdversary>(seed * 7));
    const RunResult result = engine.run();

    const auto& store = engine.store();
    // 1. Store-wide block well-formedness (linkage, heights, PoW, rounds).
    std::uint64_t honest = 0, adversarial = 0;
    for (protocol::BlockIndex i = 1;
         i < static_cast<protocol::BlockIndex>(store.size()); ++i) {
      const auto& b = store.block(i);
      const auto& parent = store.block(b.parent);
      ASSERT_EQ(b.height, parent.height + 1);
      ASSERT_GE(b.round, parent.round);
      ASSERT_TRUE(engine.oracle().verify(b.parent_hash, b.nonce,
                                         b.payload_digest, b.hash));
      if (mode == RngMode::kLegacy) {
        ASSERT_TRUE(engine.target().satisfied_by(b.hash));
      }
      (b.miner_class == protocol::MinerClass::kHonest ? honest
                                                      : adversarial)++;
    }
    // 2. Counting identities.
    EXPECT_EQ(honest, result.honest_blocks_total);
    EXPECT_EQ(adversarial, result.adversary_blocks_total);
    EXPECT_EQ(store.size(), honest + adversarial + 1);
    // 3. Every honest tip's chain validates end to end.
    for (std::uint32_t m = 0; m < engine.honest_count(); ++m) {
      const auto report = protocol::validate_chain(
          store, engine.honest_tip(m), engine.oracle(), engine.target(),
          engine.validation_policy());
      ASSERT_TRUE(report.valid) << "miner " << m << ": " << report.failure;
    }
    // 4. Honest blocks propagate within Δ: since every honest block is
    // broadcast at mining time with clamped delays, by the end of the run
    // every honest block mined more than Δ rounds before the end is known
    // to... (indirectly checked: each view's tip height can lag the best
    // honest height by only a bounded amount in quiet periods).  Weak but
    // meaningful form: all honest tips are within store bounds and heights
    // are mutually within the max observed divergence.
    const auto tips = engine.honest_tips();
    const std::uint64_t best = store.height_of(engine.best_honest_tip());
    for (const auto tip : tips) {
      ASSERT_LT(tip, store.size());
      EXPECT_LE(best - store.height_of(tip),
                result.max_divergence + config.delta + 1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

TEST(EngineDelayContract, OutOfRangeDelaysAreClamped) {
  // A strategy returning absurd delays must still yield a run where the
  // benign-delivery bound holds: with no adversary *mining*, every honest
  // view converges within Δ of a quiet period, so max divergence stays
  // small — impossible if clamping failed and blocks arrived arbitrarily
  // late (or round 0).
  class AbsurdDelays final : public Adversary {
   public:
    std::uint64_t honest_delay(std::uint64_t, std::uint32_t, std::uint32_t,
                               protocol::BlockIndex) override {
      return ~0ULL;  // clamped to Δ
    }
    void act(AdversaryOps&) override {}
    const char* name() const override { return "absurd"; }
  };
  EngineConfig config;
  config.miner_count = 16;
  config.adversary_fraction = 0.0;
  config.p = 0.001;
  config.delta = 3;
  config.rounds = 10000;
  config.seed = 3;
  ExecutionEngine engine(config, std::make_unique<AbsurdDelays>());
  const RunResult result = engine.run();
  EXPECT_LE(result.violation_depth, 3u);
  EXPECT_GT(result.convergence_opportunities, 0u);
}

}  // namespace
}  // namespace neatbound::sim
