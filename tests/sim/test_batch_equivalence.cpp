// Differential battery pinning the cross-seed batch engine to the
// serial engine bit-for-bit.  Counter-mode draws are pure functions of
// (key, counter), so running W seeds in round-major lockstep — with or
// without the quiet-round fast path, with or without observers — must
// produce *exactly* the per-seed RunResults of W serial runs.  Every
// adversary strategy runs here over a distinct network model, so all
// seven strategies and all seven models are covered; widths 1, 2, 7 and
// 64 exercise the degenerate, tiny, odd and full-wave batch shapes.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <vector>

#include "scenario/registry.hpp"
#include "sim/batch_engine.hpp"
#include "sim/engine.hpp"
#include "sim/oracle.hpp"
#include "sim/runner.hpp"
#include "sim/trace.hpp"
#include "support/crng.hpp"

namespace neatbound::sim {
namespace {

struct Cell {
  const char* strategy;
  const char* network;
};

// Every built-in strategy, each over a different built-in network model,
// so one sweep covers both registries end to end.
const Cell kCells[] = {
    {"null", "immediate"},
    {"max-delay", "max-delay"},
    {"private-withhold", "uniform"},
    {"balance-attack", "split"},
    {"selfish-mining", "bursty"},
    {"fork-balancer", "strategy"},
    {"delay-saturate", "eclipse"},
};

constexpr std::uint32_t kMaxWidth = 64;
constexpr std::uint64_t kBaseSeed = 9000;

EngineConfig base_config() {
  EngineConfig config;
  config.miner_count = 12;
  config.adversary_fraction = 0.4;
  config.delta = 3;
  config.p = 0.04692883195696345;
  config.rounds = 300;
  config.rng_mode = RngMode::kCounter;
  return config;
}

AdversaryFactory factory_for(const Cell& cell) {
  return [cell](const EngineConfig& engine_config) {
    return scenario::ScenarioRegistry::builtin().make_adversary(
        cell.network, {}, cell.strategy, {}, engine_config);
  };
}

std::vector<std::uint64_t> seeds_upto(std::uint32_t width) {
  std::vector<std::uint64_t> seeds;
  for (std::uint32_t k = 0; k < width; ++k) seeds.push_back(kBaseSeed + k);
  return seeds;
}

std::vector<RunResult> serial_reference(const Cell& cell,
                                        std::uint32_t width) {
  const AdversaryFactory factory = factory_for(cell);
  std::vector<RunResult> results;
  for (const std::uint64_t seed : seeds_upto(width)) {
    EngineConfig config = base_config();
    config.seed = seed;
    ExecutionEngine engine(config, factory(config));
    results.push_back(engine.run());
  }
  return results;
}

// Field-by-field equality over everything a RunResult reports except the
// telemetry snapshot (a batched pass attaches the whole-pass snapshot to
// lane 0 by design; the serial runs each carry their own).
void expect_result_equal(const RunResult& got, const RunResult& want) {
  EXPECT_EQ(got.honest_counts, want.honest_counts);
  EXPECT_EQ(got.honest_blocks_total, want.honest_blocks_total);
  EXPECT_EQ(got.adversary_blocks_total, want.adversary_blocks_total);
  EXPECT_EQ(got.convergence_opportunities, want.convergence_opportunities);
  EXPECT_EQ(got.max_reorg_depth, want.max_reorg_depth);
  EXPECT_EQ(got.max_divergence, want.max_divergence);
  EXPECT_EQ(got.disagreement_rounds, want.disagreement_rounds);
  EXPECT_EQ(got.violation_depth, want.violation_depth);
  EXPECT_EQ(got.chain.best_height, want.chain.best_height);
  EXPECT_EQ(got.chain.growth_per_round, want.chain.growth_per_round);
  EXPECT_EQ(got.chain.honest_blocks_in_chain,
            want.chain.honest_blocks_in_chain);
  EXPECT_EQ(got.chain.adversary_blocks_in_chain,
            want.chain.adversary_blocks_in_chain);
  EXPECT_EQ(got.chain.quality, want.chain.quality);
  EXPECT_EQ(got.store_size, want.store_size);
}

class BatchEquivalence : public ::testing::TestWithParam<Cell> {};

// The tentpole identity: one batched pass of W seeds produces, per seed,
// exactly the RunResult of that seed's serial run — for every batch
// width, with the quiet-round fast path armed (the default).
TEST_P(BatchEquivalence, BatchedPassMatchesSerialRunsBitForBit) {
  const Cell cell = GetParam();
  const std::vector<RunResult> serial = serial_reference(cell, kMaxWidth);
  for (const std::uint32_t width : {1u, 2u, 7u, 64u}) {
    SCOPED_TRACE("width=" + std::to_string(width));
    const std::vector<std::uint64_t> seeds = seeds_upto(width);
    const std::vector<RunResult> batched =
        run_batch(base_config(), seeds, factory_for(cell));
    ASSERT_EQ(batched.size(), width);
    for (std::uint32_t k = 0; k < width; ++k) {
      SCOPED_TRACE("seed=" + std::to_string(seeds[k]));
      expect_result_equal(batched[k], serial[k]);
    }
  }
}

// The quiet-round fast path commits rounds it proves empty without
// executing them; disabling it forces the full per-round loop.  Both
// paths must agree with each other (and, by the test above, with
// serial) for every strategy — this is the skip ≡ no-skip pin.
TEST_P(BatchEquivalence, QuietSkipOnAndOffAgree) {
  const Cell cell = GetParam();
  const std::vector<std::uint64_t> seeds = seeds_upto(16);
  BatchOptions no_skip;
  no_skip.allow_quiet_skip = false;
  const std::vector<RunResult> skipping =
      run_batch(base_config(), seeds, factory_for(cell));
  const std::vector<RunResult> stepping =
      run_batch(base_config(), seeds, factory_for(cell), no_skip);
  ASSERT_EQ(skipping.size(), stepping.size());
  for (std::size_t k = 0; k < seeds.size(); ++k) {
    SCOPED_TRACE("seed=" + std::to_string(seeds[k]));
    expect_result_equal(skipping[k], stepping[k]);
  }
}

// Observers are read-only: arming an invariant oracle *and* a round
// tracer on every lane must not move a single result field, even though
// observed lanes lose the quiet-round fast path.  This is the batched
// version of the "tracing is free" contract the serial engine pins.
TEST_P(BatchEquivalence, ArmedAndTracedBatchMatchesUnarmedUntraced) {
  const Cell cell = GetParam();
  const std::uint32_t width = 8;
  const std::vector<std::uint64_t> seeds = seeds_upto(width);
  const std::vector<RunResult> plain =
      run_batch(base_config(), seeds, factory_for(cell));

  OracleConfig oracle_config;
  oracle_config.common_prefix_t = 3;
  oracle_config.slice_rounds = 32;
  std::vector<std::unique_ptr<InvariantOracle>> oracles;
  std::vector<std::unique_ptr<std::ostringstream>> streams;
  std::vector<std::unique_ptr<BoundedTraceWriter>> writers;
  BatchOptions observed;
  for (std::uint32_t k = 0; k < width; ++k) {
    oracles.push_back(std::make_unique<InvariantOracle>(oracle_config));
    streams.push_back(std::make_unique<std::ostringstream>());
    writers.push_back(
        std::make_unique<BoundedTraceWriter>(*streams.back(), TraceBounds{}));
    observed.observers.push_back(
        [oracle = oracles.back().get(),
         tracer = make_round_tracer(*writers.back())](
            const ExecutionEngine& engine, std::uint64_t round) {
          oracle->observe(engine, round);
          tracer(engine, round);
        });
  }
  const std::vector<RunResult> armed =
      run_batch(base_config(), seeds, factory_for(cell), observed);

  ASSERT_EQ(armed.size(), plain.size());
  for (std::uint32_t k = 0; k < width; ++k) {
    SCOPED_TRACE("seed=" + std::to_string(seeds[k]));
    expect_result_equal(armed[k], plain[k]);
    // Every lane's tracer saw every round; its stream must parse back as
    // exactly `rounds` strict records.
    std::istringstream in(streams[k]->str());
    EXPECT_EQ(read_trace_jsonl(in).size(), base_config().rounds);
    // An oracle that fired must report a depth the un-observed run also
    // measured — observation cannot invent or lose violations.
    if (oracles[k]->violated()) {
      EXPECT_GT(plain[k].violation_depth,
                oracle_config.common_prefix_t);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCells, BatchEquivalence, ::testing::ValuesIn(kCells),
    [](const ::testing::TestParamInfo<Cell>& info) {
      std::string name = std::string(info.param.strategy) + "_" +
                         info.param.network;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// The summary fold is the same arithmetic for every batch width: chunked
// batched aggregation must reproduce the serial runner's RunningStats
// accumulators exactly (count, mean, m2, min, max — the persisted
// state), not just approximately.
TEST(BatchEquivalence, BatchedExperimentSummaryMatchesSerial) {
  ExperimentConfig config;
  config.engine = base_config();
  config.seeds = 13;  // deliberately not a multiple of any width below
  config.base_seed = kBaseSeed;
  const AdversaryFactory factory = factory_for({"fork-balancer", "strategy"});
  const ExperimentSummary serial =
      run_experiment_with(config, 3, factory);
  const auto expect_stats_equal = [](const stats::RunningStats& got,
                                     const stats::RunningStats& want) {
    const auto g = got.state();
    const auto w = want.state();
    EXPECT_EQ(g.count, w.count);
    EXPECT_EQ(g.mean, w.mean);
    EXPECT_EQ(g.m2, w.m2);
    EXPECT_EQ(g.min, w.min);
    EXPECT_EQ(g.max, w.max);
  };
  for (const std::uint32_t width : {1u, 2u, 7u, 64u}) {
    SCOPED_TRACE("batch_seeds=" + std::to_string(width));
    const ExperimentSummary batched =
        run_experiment_batched_with(config, 3, factory, width);
    expect_stats_equal(batched.convergence_opportunities,
                       serial.convergence_opportunities);
    expect_stats_equal(batched.adversary_blocks, serial.adversary_blocks);
    expect_stats_equal(batched.honest_blocks, serial.honest_blocks);
    expect_stats_equal(batched.violation_depth, serial.violation_depth);
    expect_stats_equal(batched.max_reorg_depth, serial.max_reorg_depth);
    expect_stats_equal(batched.max_divergence, serial.max_divergence);
    expect_stats_equal(batched.disagreement_rounds,
                       serial.disagreement_rounds);
    expect_stats_equal(batched.chain_growth, serial.chain_growth);
  }
}

// Counter-RNG order independence: a draw's value depends only on its
// (key, counter) address, never on which draws happened before it.
// Walking a set of addresses forward, backward, and interleaved across
// two simulated "lanes" must read identical values — the property the
// whole batch engine rests on.
TEST(CrngOrderIndependence, DrawsAreAddressedNotSequenced) {
  const crng::Key key{0x1234abcdULL, 77};
  std::vector<crng::Counter> addresses;
  for (std::uint64_t round = 1; round <= 40; ++round) {
    for (std::uint64_t miner = 0; miner < 5; ++miner) {
      addresses.push_back(
          {round, miner,
           static_cast<std::uint64_t>(crng::Purpose::kHonestBlock), 0});
    }
  }
  std::vector<std::uint64_t> forward;
  for (const crng::Counter& c : addresses) {
    forward.push_back(crng::draw(key, c));
  }
  // Backward.
  for (std::size_t i = addresses.size(); i-- > 0;) {
    EXPECT_EQ(crng::draw(key, addresses[i]), forward[i]);
  }
  // Interleaved across two lanes (distinct seeds), alternating draws —
  // the batch engine's access pattern.  Each lane's values must match
  // that lane's own forward pass.
  const crng::Key lane_a{key.cell, 1001};
  const crng::Key lane_b{key.cell, 1002};
  std::vector<std::uint64_t> a_forward;
  std::vector<std::uint64_t> b_forward;
  for (const crng::Counter& c : addresses) {
    a_forward.push_back(crng::draw(lane_a, c));
    b_forward.push_back(crng::draw(lane_b, c));
  }
  for (std::size_t i = 0; i < addresses.size(); ++i) {
    EXPECT_EQ(crng::draw(lane_b, addresses[i]), b_forward[i]);
    EXPECT_EQ(crng::draw(lane_a, addresses[i]), a_forward[i]);
  }
  // And two independent Streams over disjoint (a, b) prefixes do not
  // perturb each other no matter how their pulls interleave.
  crng::Stream solo(key, 7, 7, crng::Purpose::kGeneric);
  std::vector<std::uint64_t> solo_bits;
  for (int i = 0; i < 16; ++i) solo_bits.push_back(solo.bits());
  crng::Stream again(key, 7, 7, crng::Purpose::kGeneric);
  crng::Stream other(key, 7, 8, crng::Purpose::kGeneric);
  for (int i = 0; i < 16; ++i) {
    (void)other.bits();
    EXPECT_EQ(again.bits(), solo_bits[static_cast<std::size_t>(i)]);
  }
}

}  // namespace
}  // namespace neatbound::sim
