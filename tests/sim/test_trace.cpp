// Trace-layer tests: --trace-rounds parsing, the bounded JSONL writer,
// reader strictness (the schema is a contract — scripts/check_trace.py
// enforces the same one from the outside), writer↔reader round-trips,
// observer purity (a traced run's RunResult is bit-identical to an
// untraced run), and the aggregate engine's sink/legacy-vector shim.
#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/aggregate.hpp"
#include "sim/strategies.hpp"

namespace neatbound::sim {
namespace {

class CollectingSink final : public RoundTraceSink {
 public:
  void on_round(const RoundRecord& record) override {
    records.push_back(record);
  }
  std::vector<RoundRecord> records;
};

RoundRecord sample_record(std::uint64_t round) {
  RoundRecord record;
  record.round = round;
  record.honest_mined = 2;
  record.adversary_mined = 1;
  record.mined_by = {3, 7};
  record.delivered = 5;
  record.adoptions = 4;
  record.best_height = round + 10;
  record.violation_depth = 1;
  return record;
}

TEST(ParseTraceRounds, AcceptsEveryDocumentedForm) {
  const TraceBounds both = parse_trace_rounds("5:9");
  EXPECT_EQ(both.first_round, 5u);
  EXPECT_EQ(both.last_round, 9u);

  const TraceBounds open_end = parse_trace_rounds("5:");
  EXPECT_EQ(open_end.first_round, 5u);
  EXPECT_EQ(open_end.last_round, std::numeric_limits<std::uint64_t>::max());

  const TraceBounds open_start = parse_trace_rounds(":9");
  EXPECT_EQ(open_start.first_round, 1u);
  EXPECT_EQ(open_start.last_round, 9u);

  const TraceBounds single = parse_trace_rounds("7");
  EXPECT_EQ(single.first_round, 7u);
  EXPECT_EQ(single.last_round, 7u);
}

TEST(ParseTraceRounds, RejectsMalformedWindows) {
  EXPECT_THROW((void)parse_trace_rounds(""), std::invalid_argument);
  EXPECT_THROW((void)parse_trace_rounds("abc"), std::invalid_argument);
  EXPECT_THROW((void)parse_trace_rounds("1:2:3"), std::invalid_argument);
  EXPECT_THROW((void)parse_trace_rounds("-3"), std::invalid_argument);
  EXPECT_THROW((void)parse_trace_rounds("0:5"), std::invalid_argument);
  EXPECT_THROW((void)parse_trace_rounds("9:5"), std::invalid_argument);
}

TEST(BoundedTraceWriter, EnforcesWindowAndRecordCap) {
  std::ostringstream os;
  TraceBounds bounds;
  bounds.first_round = 3;
  bounds.last_round = 10;
  bounds.max_records = 4;
  BoundedTraceWriter writer(os, bounds);
  for (std::uint64_t round = 1; round <= 12; ++round) {
    writer.on_round(sample_record(round));
  }
  EXPECT_EQ(writer.records_written(), 4u);
  EXPECT_TRUE(writer.truncated());

  std::istringstream is(os.str());
  const std::vector<RoundRecord> readback = read_trace_jsonl(is);
  ASSERT_EQ(readback.size(), 4u);
  EXPECT_EQ(readback.front().round, 3u);  // window skips rounds 1-2
  EXPECT_EQ(readback.back().round, 6u);   // cap stops after 4 records
}

TEST(BoundedTraceWriter, InBudgetRunIsNotTruncated) {
  std::ostringstream os;
  BoundedTraceWriter writer(os, TraceBounds{});
  for (std::uint64_t round = 1; round <= 5; ++round) {
    writer.on_round(sample_record(round));
  }
  EXPECT_EQ(writer.records_written(), 5u);
  EXPECT_FALSE(writer.truncated());
}

TEST(TraceJsonl, WriterReaderRoundTrip) {
  std::vector<RoundRecord> records;
  records.push_back(sample_record(1));
  RoundRecord quiet;  // a round where nothing happened
  quiet.round = 2;
  records.push_back(quiet);
  records.push_back(sample_record(9));

  std::ostringstream os;
  for (const RoundRecord& record : records) {
    os << to_jsonl_line(record) << '\n';
  }
  std::istringstream is(os.str());
  const std::vector<RoundRecord> readback = read_trace_jsonl(is);
  ASSERT_EQ(readback.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(readback[i].round, records[i].round);
    EXPECT_EQ(readback[i].honest_mined, records[i].honest_mined);
    EXPECT_EQ(readback[i].adversary_mined, records[i].adversary_mined);
    EXPECT_EQ(readback[i].mined_by, records[i].mined_by);
    EXPECT_EQ(readback[i].delivered, records[i].delivered);
    EXPECT_EQ(readback[i].adoptions, records[i].adoptions);
    EXPECT_EQ(readback[i].best_height, records[i].best_height);
    EXPECT_EQ(readback[i].violation_depth, records[i].violation_depth);
  }
}

TEST(TraceJsonl, ReaderRejectsSchemaDrift) {
  const auto reject = [](const std::string& text) {
    std::istringstream is(text);
    EXPECT_THROW((void)read_trace_jsonl(is), std::runtime_error) << text;
  };
  const std::string good = to_jsonl_line(sample_record(1));

  reject("not json\n");
  reject("[1,2]\n");
  // An extra key: the key set is exact, not a superset.
  std::string extra = good;
  extra.insert(extra.size() - 1, ",\"extra\":0");
  reject(extra + "\n");
  // A missing key (violation_depth dropped).
  reject(
      "{\"round\":1,\"honest_mined\":0,\"adversary_mined\":0,"
      "\"mined_by\":[],\"delivered\":0,\"adoptions\":0,"
      "\"best_height\":0}\n");
  // A non-empty mined_by must have honest_mined entries...
  reject(
      "{\"round\":1,\"honest_mined\":2,\"adversary_mined\":0,"
      "\"mined_by\":[1],\"delivered\":0,\"adoptions\":0,"
      "\"best_height\":0,\"violation_depth\":0}\n");
  // ...but an empty one with honest_mined > 0 is the documented
  // aggregate-engine form (miner identity not modeled).
  std::istringstream aggregate_style(
      "{\"round\":1,\"honest_mined\":2,\"adversary_mined\":0,"
      "\"mined_by\":[],\"delivered\":0,\"adoptions\":0,"
      "\"best_height\":0,\"violation_depth\":0}\n");
  EXPECT_EQ(read_trace_jsonl(aggregate_style).size(), 1u);
  // Rounds strictly increasing.
  reject(good + "\n" + good + "\n");
  // Blank lines only at the end of the stream.
  reject(good + "\n\n" + good + "\n");

  // ... and a trailing blank is fine (a flushed, truncated file).
  std::istringstream trailing(good + "\n\n");
  EXPECT_EQ(read_trace_jsonl(trailing).size(), 1u);
}

EngineConfig traced_config() {
  EngineConfig config;
  config.miner_count = 24;
  config.adversary_fraction = 0.25;
  config.p = 0.01;
  config.delta = 2;
  config.rounds = 600;
  config.seed = 2026;
  return config;
}

TEST(RoundTracer, TracedRunIsBitIdenticalToUntraced) {
  ExecutionEngine plain(traced_config(),
                        std::make_unique<PrivateWithholdAdversary>());
  const RunResult untraced = plain.run();

  CollectingSink sink;
  ExecutionEngine observed(traced_config(),
                           std::make_unique<PrivateWithholdAdversary>());
  const RunResult traced = observed.run(make_round_tracer(sink));

  EXPECT_EQ(traced.honest_counts, untraced.honest_counts);
  EXPECT_EQ(traced.honest_blocks_total, untraced.honest_blocks_total);
  EXPECT_EQ(traced.adversary_blocks_total, untraced.adversary_blocks_total);
  EXPECT_EQ(traced.convergence_opportunities,
            untraced.convergence_opportunities);
  EXPECT_EQ(traced.max_reorg_depth, untraced.max_reorg_depth);
  EXPECT_EQ(traced.max_divergence, untraced.max_divergence);
  EXPECT_EQ(traced.disagreement_rounds, untraced.disagreement_rounds);
  EXPECT_EQ(traced.violation_depth, untraced.violation_depth);
  EXPECT_EQ(traced.chain.best_height, untraced.chain.best_height);
  EXPECT_EQ(traced.chain.growth_per_round, untraced.chain.growth_per_round);
  EXPECT_EQ(traced.chain.honest_blocks_in_chain,
            untraced.chain.honest_blocks_in_chain);
  EXPECT_EQ(traced.chain.adversary_blocks_in_chain,
            untraced.chain.adversary_blocks_in_chain);
  EXPECT_EQ(traced.chain.quality, untraced.chain.quality);
  EXPECT_EQ(traced.store_size, untraced.store_size);
  // Event counters are part of the trajectory; phase wall times are not.
  EXPECT_EQ(traced.telemetry.counters, untraced.telemetry.counters);
}

TEST(RoundTracer, RecordsAreConsistentWithTheRun) {
  CollectingSink sink;
  ExecutionEngine engine(traced_config(),
                         std::make_unique<PrivateWithholdAdversary>());
  const RunResult result = engine.run(make_round_tracer(sink));

  ASSERT_EQ(sink.records.size(), traced_config().rounds);
  std::uint64_t honest_total = 0;
  std::uint64_t prev_best_height = 0;
  std::uint64_t prev_violation_depth = 0;
  for (std::size_t i = 0; i < sink.records.size(); ++i) {
    const RoundRecord& record = sink.records[i];
    EXPECT_EQ(record.round, i + 1);  // 1-based, dense
    EXPECT_EQ(record.mined_by.size(), record.honest_mined);
    EXPECT_EQ(record.honest_mined, result.honest_counts[i]);
    EXPECT_LE(record.adoptions, record.delivered + record.honest_mined);
    EXPECT_GE(record.best_height, prev_best_height);
    EXPECT_GE(record.violation_depth, prev_violation_depth);
    prev_best_height = record.best_height;
    prev_violation_depth = record.violation_depth;
    honest_total += record.honest_mined;
  }
  EXPECT_EQ(honest_total, result.honest_blocks_total);
  EXPECT_EQ(sink.records.back().best_height, result.chain.best_height);
  EXPECT_EQ(sink.records.back().violation_depth, result.violation_depth);
}

TEST(AggregateTrace, SinkAndLegacyVectorShimAgree) {
  AggregateConfig config;
  config.honest_trials = 30.0;
  config.adversary_trials = 10.0;
  config.p = 0.01;
  config.delta = 2;
  config.rounds = 2000;
  config.seed = 99;

  std::vector<std::uint32_t> honest_counts;
  const AggregateResult via_vector =
      run_aggregate_traced(config, honest_counts);
  CollectingSink sink;
  const AggregateResult via_sink = run_aggregate_traced(config, sink);
  const AggregateResult plain = run_aggregate(config);

  EXPECT_EQ(via_vector.honest_blocks, via_sink.honest_blocks);
  EXPECT_EQ(via_vector.adversary_blocks, via_sink.adversary_blocks);
  EXPECT_EQ(via_vector.convergence_opportunities,
            via_sink.convergence_opportunities);
  EXPECT_EQ(via_vector.h_rounds, via_sink.h_rounds);
  EXPECT_EQ(via_vector.h1_rounds, via_sink.h1_rounds);
  EXPECT_EQ(plain.honest_blocks, via_sink.honest_blocks);
  EXPECT_EQ(plain.convergence_opportunities,
            via_sink.convergence_opportunities);

  ASSERT_EQ(sink.records.size(), honest_counts.size());
  for (std::size_t i = 0; i < sink.records.size(); ++i) {
    EXPECT_EQ(sink.records[i].round, i + 1);
    EXPECT_EQ(sink.records[i].honest_mined, honest_counts[i]);
    EXPECT_TRUE(sink.records[i].mined_by.empty());
  }
}

TEST(AggregateTrace, SerializesThroughBoundedWriterAndReadsBack) {
  // The aggregate stream and the engine stream share one schema and one
  // writer; the strict reader must accept the aggregate form (empty
  // mined_by even in honest-mining rounds) end to end.
  AggregateConfig config;
  config.honest_trials = 30.0;
  config.adversary_trials = 10.0;
  config.p = 0.01;
  config.delta = 2;
  config.rounds = 500;
  config.seed = 99;

  std::ostringstream os;
  BoundedTraceWriter writer(os, TraceBounds{});
  const AggregateResult result = run_aggregate_traced(config, writer);

  std::istringstream is(os.str());
  const std::vector<RoundRecord> readback = read_trace_jsonl(is);
  ASSERT_EQ(readback.size(), config.rounds);
  std::uint64_t honest_total = 0;
  bool saw_honest_round = false;
  for (const RoundRecord& record : readback) {
    honest_total += record.honest_mined;
    saw_honest_round |= record.honest_mined > 0;
    EXPECT_TRUE(record.mined_by.empty());
  }
  EXPECT_EQ(honest_total, result.honest_blocks);
  // The config mines often enough that the reader exercised the
  // honest_mined > 0, empty-mined_by path.
  EXPECT_TRUE(saw_honest_round);
}

}  // namespace
}  // namespace neatbound::sim
