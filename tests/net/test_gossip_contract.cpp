// Engine-level network contracts:
//   * gossip-echo Δ-bound — any chain held by one honest player at round r
//     is height-dominated by every honest player's chain at r + Δ, even
//     when the adversary publishes to a single victim only;
//   * engine-side clamping — out-of-range adversary delays (0, or far
//     beyond Δ) behave exactly like the nearest legal delay.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "sim/engine.hpp"
#include "sim/strategies.hpp"

namespace neatbound::sim {
namespace {

/// Mines a private chain and leaks every block to honest miner 0 only,
/// with the minimum delay; honest traffic is delayed far out of range.
/// The gossip echo is the only mechanism spreading the leaked blocks.
class SingleVictimAdversary final : public Adversary {
 public:
  std::uint64_t honest_delay(std::uint64_t, std::uint32_t, std::uint32_t,
                             protocol::BlockIndex) override {
    return 1000000;  // far out of range; engine must clamp to Δ
  }
  void act(AdversaryOps& ops) override {
    while (ops.remaining_queries() > 0) {
      if (const auto mined = ops.try_mine_on(tip_)) {
        tip_ = *mined;
        ops.publish_to(0, *mined, 1);
      }
    }
  }
  const char* name() const override { return "single-victim"; }

 private:
  protocol::BlockIndex tip_ = protocol::kGenesisIndex;
};

TEST(GossipEcho, DeltaBoundsHonestHeightDivergence) {
  EngineConfig config;
  config.miner_count = 20;
  config.adversary_fraction = 0.4;  // busy adversary: many leaked blocks
  config.p = 0.01;
  config.delta = 5;
  config.rounds = 4000;
  config.seed = 17;

  // Per-round min/max honest tip heights, indexed by round (1-based).
  std::vector<std::uint64_t> min_height(config.rounds + 1, 0);
  std::vector<std::uint64_t> max_height(config.rounds + 1, 0);
  const auto observer = [&](const ExecutionEngine& engine,
                            std::uint64_t round) {
    const auto& store = engine.store();
    std::uint64_t lo = ~0ULL, hi = 0;
    for (const auto tip : engine.honest_tips()) {
      const std::uint64_t h = store.height_of(tip);
      lo = std::min(lo, h);
      hi = std::max(hi, h);
    }
    min_height[round] = lo;
    max_height[round] = hi;
  };

  ExecutionEngine engine(config, std::make_unique<SingleVictimAdversary>());
  (void)engine.run(observer);

  // The Δ-bound: whatever chain one honest player held at r, all honest
  // players hold at least that height by r + Δ — the gossip echo has
  // delivered every block of that chain to everyone within Δ of its first
  // honest receipt.
  for (std::uint64_t round = 1; round + config.delta <= config.rounds;
       ++round) {
    ASSERT_GE(min_height[round + config.delta], max_height[round])
        << "round " << round;
  }
}

/// Delays only; the corrupted miners never act (fraction 0 below).
class FixedReplyDelay final : public Adversary {
 public:
  explicit FixedReplyDelay(std::uint64_t reply) : reply_(reply) {}
  std::uint64_t honest_delay(std::uint64_t, std::uint32_t, std::uint32_t,
                             protocol::BlockIndex) override {
    return reply_;
  }
  void act(AdversaryOps&) override {}
  const char* name() const override { return "fixed-reply"; }

 private:
  std::uint64_t reply_;
};

RunResult run_with_delay(std::uint64_t reply, std::uint64_t delta) {
  EngineConfig config;
  config.miner_count = 12;
  config.adversary_fraction = 0.0;
  config.p = 0.004;
  config.delta = delta;
  config.rounds = 3000;
  config.seed = 23;
  ExecutionEngine engine(config, std::make_unique<FixedReplyDelay>(reply));
  return engine.run();
}

void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.honest_counts, b.honest_counts);
  EXPECT_EQ(a.honest_blocks_total, b.honest_blocks_total);
  EXPECT_EQ(a.adversary_blocks_total, b.adversary_blocks_total);
  EXPECT_EQ(a.convergence_opportunities, b.convergence_opportunities);
  EXPECT_EQ(a.max_reorg_depth, b.max_reorg_depth);
  EXPECT_EQ(a.max_divergence, b.max_divergence);
  EXPECT_EQ(a.disagreement_rounds, b.disagreement_rounds);
  EXPECT_EQ(a.violation_depth, b.violation_depth);
  EXPECT_EQ(a.store_size, b.store_size);
  EXPECT_EQ(a.chain.best_height, b.chain.best_height);
}

TEST(EngineClamping, HugeDelayBehavesExactlyLikeDelta) {
  const std::uint64_t delta = 4;
  expect_identical(run_with_delay(~0ULL, delta),
                   run_with_delay(delta, delta));
  expect_identical(run_with_delay(delta + 1, delta),
                   run_with_delay(delta, delta));
}

TEST(EngineClamping, ZeroDelayBehavesExactlyLikeOne) {
  const std::uint64_t delta = 4;
  expect_identical(run_with_delay(0, delta), run_with_delay(1, delta));
}

}  // namespace
}  // namespace neatbound::sim
