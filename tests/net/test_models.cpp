// Unit tests for the structured network models (bursty windows, eclipse
// targeting) and the determinism contract of DeliveryCalendar::collect_due.
#include "net/models.hpp"

#include <gtest/gtest.h>

#include "support/contracts.hpp"
#include "support/rng.hpp"

namespace neatbound::net {
namespace {

TEST(BurstyDelivery, AlternatesCalmAndBurstWindows) {
  // period 6, burst 2, phase 0: rounds 0,1 (mod 6) congested.
  BurstyDelivery schedule(5, 6, 2);
  for (std::uint64_t round = 0; round < 24; ++round) {
    const bool burst = round % 6 < 2;
    EXPECT_EQ(schedule.in_burst(round), burst) << "round " << round;
    EXPECT_EQ(schedule.delay(round, 0, 1, 0), burst ? 5u : 1u)
        << "round " << round;
  }
  EXPECT_EQ(schedule.max_delay(), 5u);
}

TEST(BurstyDelivery, PhaseShiftsTheWindow) {
  BurstyDelivery schedule(3, 4, 1, 2);
  // (round + 2) % 4 < 1 → burst at rounds 2, 6, 10, …
  EXPECT_FALSE(schedule.in_burst(0));
  EXPECT_FALSE(schedule.in_burst(1));
  EXPECT_TRUE(schedule.in_burst(2));
  EXPECT_FALSE(schedule.in_burst(3));
  EXPECT_TRUE(schedule.in_burst(6));
}

TEST(BurstyDelivery, SaturatedBurstEqualsMaxDelay) {
  // burst_length == period: permanently congested.
  BurstyDelivery schedule(4, 3, 3);
  for (std::uint64_t round = 0; round < 9; ++round) {
    EXPECT_EQ(schedule.delay(round, 0, 1, 0), 4u);
  }
}

TEST(BurstyDelivery, Validation) {
  EXPECT_THROW(BurstyDelivery(0, 4, 2), ContractViolation);
  EXPECT_THROW(BurstyDelivery(3, 0, 0), ContractViolation);
  EXPECT_THROW(BurstyDelivery(3, 4, 5), ContractViolation);
}

TEST(EclipseDelivery, VictimsWaitTheFullDelta) {
  const auto schedule = EclipseDelivery::first_k(7, 6, 2);
  for (std::uint32_t recipient = 0; recipient < 6; ++recipient) {
    const bool victim = recipient < 2;
    EXPECT_EQ(schedule.is_victim(recipient), victim);
  }
  EclipseDelivery mutable_schedule = schedule;
  EXPECT_EQ(mutable_schedule.delay(0, 3, 0, 0), 7u);
  EXPECT_EQ(mutable_schedule.delay(0, 3, 1, 0), 7u);
  EXPECT_EQ(mutable_schedule.delay(0, 0, 3, 0), 1u);
  EXPECT_EQ(mutable_schedule.delay(9, 1, 5, 0), 1u);
}

TEST(EclipseDelivery, Validation) {
  EXPECT_THROW(EclipseDelivery(0, {true}), ContractViolation);
  EXPECT_THROW(EclipseDelivery(3, {}), ContractViolation);
  EXPECT_THROW(EclipseDelivery::first_k(3, 2, 5), ContractViolation);
  EclipseDelivery schedule(3, {true, false});
  EXPECT_THROW((void)schedule.delay(0, 0, 7, 0), ContractViolation);
}

// --- DeliveryCalendar::collect_due determinism --------------------------------

TEST(DeliveryCalendarDeterminism, IdenticalScheduleIdenticalPopSequence) {
  // The same schedule() call sequence must always produce the same
  // collect_due output — engine runs are replayed bit-for-bit from a seed,
  // so any nondeterminism here would break every reproducibility test
  // upstream.  Includes heavy due-round ties (the interesting case: order
  // within a tie is the schedule order, which is a deterministic
  // function of the insertion sequence).
  Rng rng(42);
  std::vector<Delivery> inserts;
  for (int i = 0; i < 500; ++i) {
    inserts.push_back(
        Delivery{1 + rng.uniform_below(20),
                 static_cast<std::uint32_t>(rng.uniform_below(8)),
                 static_cast<protocol::BlockIndex>(rng.uniform_below(100))});
  }

  const auto drain = [&inserts] {
    DeliveryCalendar queue(8);
    for (const Delivery& d : inserts) {
      queue.schedule(d.due_round, d.recipient, d.block);
    }
    std::vector<Delivery> popped;
    for (std::uint64_t round = 0; round <= 20; ++round) {
      for (const Delivery& d : queue.collect_due(round)) popped.push_back(d);
    }
    return popped;
  };

  const std::vector<Delivery> first = drain();
  const std::vector<Delivery> second = drain();
  ASSERT_EQ(first.size(), inserts.size());
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].due_round, second[i].due_round) << i;
    EXPECT_EQ(first[i].recipient, second[i].recipient) << i;
    EXPECT_EQ(first[i].block, second[i].block) << i;
  }
}

TEST(DeliveryCalendarDeterminism, DueOrderIsNonDecreasingAndComplete) {
  Rng rng(7);
  DeliveryCalendar queue(4);
  std::size_t scheduled = 0;
  for (int i = 0; i < 300; ++i) {
    queue.schedule(1 + rng.uniform_below(50),
                   static_cast<std::uint32_t>(rng.uniform_below(4)),
                   rng.uniform_below(1000));
    ++scheduled;
  }
  // One big collection: everything due, in non-decreasing due_round order.
  const auto due = queue.collect_due(50);
  ASSERT_EQ(due.size(), scheduled);
  for (std::size_t i = 1; i < due.size(); ++i) {
    EXPECT_LE(due[i - 1].due_round, due[i].due_round) << i;
  }
  EXPECT_EQ(queue.pending(), 0u);
}

TEST(DeliveryCalendarDeterminism, NothingDeliveredEarly) {
  DeliveryCalendar queue(2);
  queue.schedule(10, 0, 1);
  queue.schedule(11, 1, 2);
  for (std::uint64_t round = 0; round < 10; ++round) {
    EXPECT_TRUE(queue.collect_due(round).empty()) << "round " << round;
  }
  EXPECT_EQ(queue.collect_due(10).size(), 1u);
  EXPECT_EQ(queue.collect_due(11).size(), 1u);
}

}  // namespace
}  // namespace neatbound::net
