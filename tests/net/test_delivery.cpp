#include "net/delivery.hpp"

#include <gtest/gtest.h>

#include "support/contracts.hpp"

namespace neatbound::net {
namespace {

TEST(DeliveryQueue, DeliversAtDueRound) {
  DeliveryQueue queue(4);
  queue.schedule(5, 0, 10);
  queue.schedule(3, 1, 11);
  queue.schedule(7, 2, 12);
  EXPECT_EQ(queue.pending(), 3u);

  auto due3 = queue.collect_due(3);
  ASSERT_EQ(due3.size(), 1u);
  EXPECT_EQ(due3[0].recipient, 1u);
  EXPECT_EQ(due3[0].block, 11u);

  auto due6 = queue.collect_due(6);
  ASSERT_EQ(due6.size(), 1u);
  EXPECT_EQ(due6[0].block, 10u);
  EXPECT_EQ(queue.pending(), 1u);
}

TEST(DeliveryQueue, CollectsMultipleInDueOrder) {
  DeliveryQueue queue(2);
  queue.schedule(2, 0, 1);
  queue.schedule(1, 1, 2);
  queue.schedule(2, 1, 3);
  const auto due = queue.collect_due(2);
  ASSERT_EQ(due.size(), 3u);
  EXPECT_EQ(due[0].due_round, 1u);
}

TEST(DeliveryQueue, RejectsBadRecipient) {
  DeliveryQueue queue(2);
  EXPECT_THROW(queue.schedule(1, 2, 0), ContractViolation);
  EXPECT_THROW(DeliveryQueue(0), ContractViolation);
}

TEST(Schedules, ImmediateAlwaysOne) {
  ImmediateDelivery schedule(8);
  EXPECT_EQ(schedule.delay(0, 0, 1, 0), 1u);
  EXPECT_EQ(schedule.max_delay(), 8u);
}

TEST(Schedules, MaxDelayAlwaysDelta) {
  MaxDelayDelivery schedule(8);
  EXPECT_EQ(schedule.delay(0, 0, 1, 0), 8u);
}

TEST(Schedules, UniformWithinBounds) {
  UniformRandomDelay schedule(5, Rng(1));
  bool saw_low = false, saw_high = false;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t d = schedule.delay(0, 0, 1, 0);
    ASSERT_GE(d, 1u);
    ASSERT_LE(d, 5u);
    saw_low |= (d == 1);
    saw_high |= (d == 5);
  }
  EXPECT_TRUE(saw_low);
  EXPECT_TRUE(saw_high);
}

TEST(Schedules, SplitKeepsGroupsApart) {
  // Miners 0,1 in group 0; miners 2,3 in group 1.
  SplitDelivery schedule(6, {0, 0, 1, 1});
  EXPECT_EQ(schedule.delay(0, 0, 1, 0), 1u);  // same group
  EXPECT_EQ(schedule.delay(0, 2, 3, 0), 1u);
  EXPECT_EQ(schedule.delay(0, 0, 2, 0), 6u);  // cross group
  EXPECT_EQ(schedule.delay(0, 3, 1, 0), 6u);
}

TEST(Schedules, SplitChecksIds) {
  SplitDelivery schedule(6, {0, 1});
  EXPECT_THROW((void)schedule.delay(0, 0, 5, 0), ContractViolation);
}

TEST(Schedules, DeltaValidation) {
  EXPECT_THROW(ImmediateDelivery(0), ContractViolation);
  EXPECT_THROW(MaxDelayDelivery(0), ContractViolation);
  EXPECT_THROW(UniformRandomDelay(0, Rng(1)), ContractViolation);
  EXPECT_THROW(SplitDelivery(0, {0, 1}), ContractViolation);
}

}  // namespace
}  // namespace neatbound::net
