#include "net/delivery.hpp"

#include <gtest/gtest.h>

#include "support/contracts.hpp"

namespace neatbound::net {
namespace {

TEST(DeliveryCalendar, DeliversAtDueRound) {
  DeliveryCalendar calendar(4);
  calendar.schedule(5, 0, 10);
  calendar.schedule(3, 1, 11);
  calendar.schedule(7, 2, 12);
  EXPECT_EQ(calendar.pending(), 3u);

  auto due3 = calendar.collect_due(3);
  ASSERT_EQ(due3.size(), 1u);
  EXPECT_EQ(due3[0].recipient, 1u);
  EXPECT_EQ(due3[0].block, 11u);

  auto due6 = calendar.collect_due(6);
  ASSERT_EQ(due6.size(), 1u);
  EXPECT_EQ(due6[0].block, 10u);
  EXPECT_EQ(calendar.pending(), 1u);
}

TEST(DeliveryCalendar, CollectsMultipleInDueOrder) {
  DeliveryCalendar calendar(2);
  calendar.schedule(2, 0, 1);
  calendar.schedule(1, 1, 2);
  calendar.schedule(2, 1, 3);
  const auto due = calendar.collect_due(2);
  ASSERT_EQ(due.size(), 3u);
  EXPECT_EQ(due[0].due_round, 1u);
}

TEST(DeliveryCalendar, FifoWithinARound) {
  // The calendar pins within-round order to schedule order (the old heap
  // left it unspecified); ascending due rounds between rounds.
  DeliveryCalendar calendar(4);
  calendar.schedule(3, 2, 30);
  calendar.schedule(2, 1, 20);
  calendar.schedule(3, 0, 31);
  calendar.schedule(2, 3, 21);
  calendar.schedule(3, 1, 32);
  const auto due = calendar.collect_due(3);
  ASSERT_EQ(due.size(), 5u);
  const std::uint64_t expected_rounds[] = {2, 2, 3, 3, 3};
  const protocol::BlockIndex expected_blocks[] = {20, 21, 30, 31, 32};
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(due[i].due_round, expected_rounds[i]) << i;
    EXPECT_EQ(due[i].block, expected_blocks[i]) << i;
  }
}

TEST(DeliveryCalendar, GrowsPastTheInitialHorizon) {
  DeliveryCalendar calendar(2);
  const std::uint64_t start_horizon = calendar.horizon();
  calendar.schedule(1, 0, 1);
  calendar.schedule(start_horizon + 500, 1, 2);  // far beyond the ring
  EXPECT_GT(calendar.horizon(), start_horizon);
  EXPECT_EQ(calendar.pending(), 2u);
  // Both survive the re-bucketing, in due order.
  const auto due = calendar.collect_due(start_horizon + 500);
  ASSERT_EQ(due.size(), 2u);
  EXPECT_EQ(due[0].block, 1u);
  EXPECT_EQ(due[1].block, 2u);
  EXPECT_EQ(due[1].due_round, start_horizon + 500);
}

TEST(DeliveryCalendar, LateScheduleClampsToNextCollect) {
  // Scheduling at or before an already-collected round may not lose the
  // message: it arrives at the next collect (late, like the old heap).
  DeliveryCalendar calendar(2);
  (void)calendar.collect_due(10);
  calendar.schedule(3, 0, 7);  // round 3 already collected
  EXPECT_EQ(calendar.pending(), 1u);
  EXPECT_TRUE(calendar.collect_due(10).empty());  // nothing newly due ≤ 10
  const auto due = calendar.collect_due(11);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].block, 7u);
}

TEST(DeliveryCalendar, DrainDueMatchesCollectDue) {
  Rng rng(5);
  std::vector<Delivery> inserts;
  for (int i = 0; i < 200; ++i) {
    inserts.push_back(
        Delivery{1 + rng.uniform_below(12),
                 static_cast<std::uint32_t>(rng.uniform_below(4)),
                 static_cast<protocol::BlockIndex>(rng.uniform_below(50))});
  }
  DeliveryCalendar collected(4);
  DeliveryCalendar drained(4);
  for (const Delivery& d : inserts) {
    collected.schedule(d.due_round, d.recipient, d.block);
    drained.schedule(d.due_round, d.recipient, d.block);
  }
  for (std::uint64_t round = 0; round <= 12; ++round) {
    const auto via_collect = collected.collect_due(round);
    std::vector<Delivery> via_drain;
    drained.drain_due(round,
                      [&via_drain](const Delivery& d) { via_drain.push_back(d); });
    ASSERT_EQ(via_collect.size(), via_drain.size()) << "round " << round;
    for (std::size_t i = 0; i < via_collect.size(); ++i) {
      EXPECT_EQ(via_collect[i].due_round, via_drain[i].due_round);
      EXPECT_EQ(via_collect[i].recipient, via_drain[i].recipient);
      EXPECT_EQ(via_collect[i].block, via_drain[i].block);
    }
  }
  EXPECT_EQ(collected.pending(), 0u);
  EXPECT_EQ(drained.pending(), 0u);
}

TEST(DeliveryCalendar, RejectsBadRecipient) {
  DeliveryCalendar calendar(2);
  EXPECT_THROW(calendar.schedule(1, 2, 0), ContractViolation);
  EXPECT_THROW(DeliveryCalendar(0), ContractViolation);
}

TEST(DeliveryCalendar, RejectsFarFutureSchedule) {
  // Memory is O(span): a due round past kMaxSpan is a contract violation,
  // not an unbounded allocation.
  DeliveryCalendar calendar(2);
  calendar.schedule(DeliveryCalendar::kMaxSpan - 1, 0, 1);  // just inside
  EXPECT_THROW(calendar.schedule(DeliveryCalendar::kMaxSpan, 0, 2),
               ContractViolation);
  EXPECT_THROW(calendar.schedule(~std::uint64_t{0}, 0, 3),
               ContractViolation);
  // The horizon is relative to the drain point, not absolute.
  (void)calendar.collect_due(DeliveryCalendar::kMaxSpan);
  calendar.schedule(2 * DeliveryCalendar::kMaxSpan, 1, 4);
  EXPECT_EQ(calendar.pending(), 1u);
}

TEST(Schedules, ImmediateAlwaysOne) {
  ImmediateDelivery schedule(8);
  EXPECT_EQ(schedule.delay(0, 0, 1, 0), 1u);
  EXPECT_EQ(schedule.max_delay(), 8u);
}

TEST(Schedules, MaxDelayAlwaysDelta) {
  MaxDelayDelivery schedule(8);
  EXPECT_EQ(schedule.delay(0, 0, 1, 0), 8u);
}

TEST(Schedules, UniformWithinBounds) {
  UniformRandomDelay schedule(5, Rng(1));
  bool saw_low = false, saw_high = false;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t d = schedule.delay(0, 0, 1, 0);
    ASSERT_GE(d, 1u);
    ASSERT_LE(d, 5u);
    saw_low |= (d == 1);
    saw_high |= (d == 5);
  }
  EXPECT_TRUE(saw_low);
  EXPECT_TRUE(saw_high);
}

TEST(Schedules, SplitKeepsGroupsApart) {
  // Miners 0,1 in group 0; miners 2,3 in group 1.
  SplitDelivery schedule(6, {0, 0, 1, 1});
  EXPECT_EQ(schedule.delay(0, 0, 1, 0), 1u);  // same group
  EXPECT_EQ(schedule.delay(0, 2, 3, 0), 1u);
  EXPECT_EQ(schedule.delay(0, 0, 2, 0), 6u);  // cross group
  EXPECT_EQ(schedule.delay(0, 3, 1, 0), 6u);
}

TEST(Schedules, SplitChecksIds) {
  SplitDelivery schedule(6, {0, 1});
  EXPECT_THROW((void)schedule.delay(0, 0, 5, 0), ContractViolation);
}

TEST(Schedules, DeltaValidation) {
  EXPECT_THROW(ImmediateDelivery(0), ContractViolation);
  EXPECT_THROW(MaxDelayDelivery(0), ContractViolation);
  EXPECT_THROW(UniformRandomDelay(0, Rng(1)), ContractViolation);
  EXPECT_THROW(SplitDelivery(0, {0, 1}), ContractViolation);
}

}  // namespace
}  // namespace neatbound::net
