// Golden violation corpus: checked-in artifacts frozen from four
// distinct adversary-strategy × network-model cells, each replayed
// through the full load→rebuild→rerun→compare path.  These pin the
// artifact schema (the strict reader must keep accepting them), engine
// determinism (the recorded seeds must keep producing the recorded
// violations bit-for-bit), and the replay verdict logic, all at once —
// any engine, RNG, registry or serialization change that silently
// shifts trajectories turns one of these red.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/artifact.hpp"
#include "scenario/registry.hpp"

#ifndef NEATBOUND_FIXTURE_DIR
#error "NEATBOUND_FIXTURE_DIR must point at tests/integration/fixtures"
#endif

namespace neatbound::scenario {
namespace {

struct GoldenCase {
  const char* file;
  const char* strategy;
  const char* network;
  std::uint64_t round;     ///< pinned first-violation round
  std::uint64_t measured;  ///< pinned violation depth
};

// Pinned verdicts: regenerate with scripts in docs/observability.md if a
// deliberate engine-semantics change lands, never to paper over drift.
const std::vector<GoldenCase> kCorpus = {
    {"fork_balancer_strategy.json", "fork-balancer", "strategy", 47, 4},
    {"private_withhold_uniform.json", "private-withhold", "uniform", 29, 4},
    {"balance_attack_split.json", "balance-attack", "split", 14, 4},
    {"selfish_mining_bursty.json", "selfish-mining", "bursty", 151, 4},
};

std::string fixture_path(const char* file) {
  return std::string(NEATBOUND_FIXTURE_DIR) + "/" + file;
}

TEST(ReplayCorpus, EveryGoldenArtifactReproduces) {
  const auto& registry = ScenarioRegistry::builtin();
  for (const GoldenCase& golden : kCorpus) {
    SCOPED_TRACE(golden.file);
    const ViolationArtifact artifact =
        load_artifact_file(fixture_path(golden.file));

    EXPECT_EQ(artifact.adversary.kind, golden.strategy);
    EXPECT_EQ(artifact.network.kind, golden.network);
    EXPECT_EQ(artifact.violation.kind, sim::InvariantKind::kCommonPrefix);
    EXPECT_EQ(artifact.violation.round, golden.round);
    EXPECT_EQ(artifact.violation.measured, golden.measured);
    EXPECT_EQ(artifact.violation.bound, 3u);

    const ReplayResult replay = replay_artifact(artifact, registry);
    EXPECT_TRUE(replay.violated);
    EXPECT_TRUE(replay.reproduced)
        << (replay.mismatches.empty() ? std::string("(no mismatches?)")
                                      : replay.mismatches.front());
    EXPECT_EQ(replay.violation, artifact.violation);
  }
}

}  // namespace
}  // namespace neatbound::scenario
