// Adversarial fuzz smoke for the replay protocol: a few hundred seeds
// through violent high-ν cells, and *every* violation the oracle
// freezes must survive the full build_artifact → serialize → parse →
// replay loop bit-for-bit.  This is the property the replayable-
// artifact design stands on (prefix determinism of engine trajectories
// in the round count); a single non-reproducing seed here is a
// determinism bug, not flakiness.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "scenario/artifact.hpp"
#include "scenario/registry.hpp"
#include "sim/engine.hpp"
#include "sim/oracle.hpp"

namespace neatbound::scenario {
namespace {

struct FuzzCell {
  const char* strategy;
  const char* network;
  double nu;
  double p;
};

TEST(OracleFuzz, EveryFrozenViolationReplaysBitIdentically) {
  // Violent cells: ν at or past the neat bound's tolerable range for
  // these Δ/p, strategies chosen for maximum disagreement.
  const std::vector<FuzzCell> cells = {
      {"fork-balancer", "strategy", 0.40, 0.030},
      {"private-withhold", "uniform", 0.45, 0.035},
      {"balance-attack", "split", 0.40, 0.030},
      {"delay-saturate", "bursty", 0.45, 0.035},
  };
  constexpr std::uint32_t kSeedsPerCell = 75;  // 300 runs total
  constexpr std::uint64_t kBaseSeed = 50000;

  const auto& registry = ScenarioRegistry::builtin();
  std::uint64_t violations = 0;
  for (const FuzzCell& cell : cells) {
    for (std::uint32_t k = 0; k < kSeedsPerCell; ++k) {
      sim::EngineConfig config;
      config.miner_count = 10;
      config.adversary_fraction = cell.nu;
      config.p = cell.p;
      config.delta = 3;
      config.rounds = 160;
      config.seed = kBaseSeed + k;

      sim::OracleConfig oracle_config;
      oracle_config.common_prefix_t = 3;
      oracle_config.slice_rounds = 24;
      sim::InvariantOracle oracle(oracle_config);

      auto adversary = registry.make_adversary(
          cell.network, Params{}, cell.strategy, Params{}, config);
      sim::ExecutionEngine engine(config, std::move(adversary));
      (void)engine.run(oracle.observer());
      if (!oracle.violated()) continue;
      ++violations;

      const std::string label = std::string(cell.strategy) + " × " +
                                cell.network + " seed " +
                                std::to_string(config.seed);
      const ViolationArtifact artifact = build_artifact(
          config, oracle_config.common_prefix_t,
          ComponentSpec{cell.strategy, Params{}},
          ComponentSpec{cell.network, Params{}}, oracle);

      // Through the serialized form, exactly as a file round trip would.
      std::ostringstream os;
      write_artifact(os, artifact);
      const ViolationArtifact parsed = parse_artifact(os.str());

      const ReplayResult replay = replay_artifact(parsed, registry);
      ASSERT_TRUE(replay.violated) << label;
      ASSERT_TRUE(replay.reproduced)
          << label << ": "
          << (replay.mismatches.empty() ? std::string("(no mismatches?)")
                                        : replay.mismatches.front());
      ASSERT_EQ(replay.violation, artifact.violation) << label;
    }
  }
  // The smoke must not pass vacuously: these cells are violent enough
  // that a healthy fraction of the 300 runs trips the oracle.
  EXPECT_GE(violations, 20u) << "fuzz grid produced too few violations to "
                                "exercise the replay protocol";
}

}  // namespace
}  // namespace neatbound::scenario
