// Definition 1's "overwhelming probability in T": above the bound, the
// probability that consistency fails for a given window parameter T must
// decay (at least) exponentially in T.  We estimate the survival function
// of the observed violation depth over many independent executions and
// check it is monotone and collapses rapidly.
#include <algorithm>
#include <gtest/gtest.h>
#include <memory>
#include <vector>

#include "sim/engine.hpp"
#include "sim/strategies.hpp"

namespace neatbound::sim {
namespace {

std::vector<std::uint64_t> violation_depths(double nu, double c,
                                            std::uint32_t seeds) {
  std::vector<std::uint64_t> depths;
  depths.reserve(seeds);
  for (std::uint32_t k = 0; k < seeds; ++k) {
    EngineConfig config;
    config.miner_count = 30;
    config.adversary_fraction = nu;
    config.delta = 3;
    config.p = 1.0 / (c * 30.0 * 3.0);
    config.rounds = 6000;
    config.seed = 9000 + k;
    ExecutionEngine engine(config,
                           std::make_unique<PrivateWithholdAdversary>());
    depths.push_back(engine.run().violation_depth);
  }
  return depths;
}

double survival(const std::vector<std::uint64_t>& depths, std::uint64_t t) {
  const auto above = static_cast<double>(
      std::count_if(depths.begin(), depths.end(),
                    [t](std::uint64_t d) { return d > t; }));
  return above / static_cast<double>(depths.size());
}

TEST(ExponentialTail, SurvivalCollapsesAboveTheBound) {
  // ν = 0.2, c = 6 ≫ neat bound 1.15: P[depth > T] must fall off fast.
  const auto depths = violation_depths(0.2, 6.0, 40);
  const double s2 = survival(depths, 2);
  const double s5 = survival(depths, 5);
  const double s9 = survival(depths, 9);
  // Monotone survival...
  EXPECT_GE(s2, s5);
  EXPECT_GE(s5, s9);
  // ...with a rapid collapse: almost no run needs T > 9.
  EXPECT_LE(s9, 0.10);
  // And the tail genuinely thins between 2 and 9 (not flat).
  EXPECT_LT(s9, s2);
}

TEST(ExponentialTail, FatterTailBelowTheBound) {
  // Same adversary at c = 0.7 < bound ≈ 1.15: deep violations dominate.
  const auto safe = violation_depths(0.2, 6.0, 25);
  const auto unsafe = violation_depths(0.2, 0.7, 25);
  EXPECT_GT(survival(unsafe, 9), survival(safe, 9) + 0.3);
}

TEST(ExponentialTail, DepthQuantilesOrderedInC) {
  // Median violation depth decreases as c rises through the bound.
  auto median = [](std::vector<std::uint64_t> v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  const auto low = median(violation_depths(0.25, 0.8, 15));
  const auto mid = median(violation_depths(0.25, 2.0, 15));
  const auto high = median(violation_depths(0.25, 8.0, 15));
  EXPECT_GE(low, mid);
  EXPECT_GE(mid, high);
}

}  // namespace
}  // namespace neatbound::sim
