// Protocol-level ground truth for Lemma 1: at the END of a convergence
// opportunity (the F‖P pattern H N^{≥Δ} H₁ N^Δ), all honest players agree
// on a single longest chain — provided no adversary block interferes.
//
// We run the engine with the worst benign delivery (every honest message
// delayed the full Δ, corrupted miners withholding everything), record
// every round's honest tips via the observer hook, locate the pattern
// occurrences from the per-round honest block counts, and assert literal
// tip equality at each pattern end.  This is the strongest executable
// statement of the paper's convergence-opportunity semantics.
#include <gtest/gtest.h>
#include <memory>
#include <vector>

#include "sim/engine.hpp"
#include "sim/strategies.hpp"

namespace neatbound::sim {
namespace {

struct RoundSnapshot {
  std::vector<protocol::BlockIndex> tips;
  bool all_equal = false;
};

class Lemma1Agreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Lemma1Agreement, AllTipsEqualAtOpportunityEnd) {
  const std::uint64_t delta = GetParam();
  EngineConfig config;
  config.miner_count = 24;
  config.adversary_fraction = 0.25;  // they mine, but never publish
  config.delta = delta;
  config.p = 0.003;
  config.rounds = 8000;
  config.seed = 77;

  std::vector<RoundSnapshot> history;
  history.reserve(config.rounds);
  ExecutionEngine engine(config,
                         std::make_unique<MaxDelayAdversary>(delta));
  const RunResult result = engine.run(
      [&history](const ExecutionEngine& e, std::uint64_t) {
        RoundSnapshot snap;
        snap.tips.assign(e.honest_tips().begin(), e.honest_tips().end());
        snap.all_equal = true;
        for (const auto tip : snap.tips) {
          snap.all_equal &= (tip == snap.tips[0]);
        }
        history.push_back(std::move(snap));
      });
  ASSERT_EQ(history.size(), config.rounds);
  ASSERT_GT(result.convergence_opportunities, 0u);

  // Locate pattern ends: round t (0-based in honest_counts) has exactly
  // one honest block, ≥Δ quiet before (genesis seeds the first gap), and
  // Δ quiet after; the opportunity completes at t+Δ.
  std::uint64_t quiet_before = delta;
  std::uint64_t checked = 0;
  const auto& counts = result.honest_counts;
  for (std::size_t t = 0; t < counts.size(); ++t) {
    if (counts[t] == 0) {
      ++quiet_before;
      continue;
    }
    if (counts[t] == 1 && quiet_before >= delta &&
        t + delta < counts.size()) {
      bool quiet_after = true;
      for (std::size_t j = t + 1; j <= t + delta; ++j) {
        quiet_after &= (counts[j] == 0);
      }
      if (quiet_after) {
        // history[k] is the snapshot after round k+1; pattern end round
        // is (t+1)+delta, i.e. index t+delta.
        const RoundSnapshot& snap = history[t + delta];
        EXPECT_TRUE(snap.all_equal)
            << "tips diverge at the end of the opportunity anchored at "
               "round "
            << t + 1;
        ++checked;
      }
    }
    quiet_before = 0;
  }
  EXPECT_EQ(checked, result.convergence_opportunities);
}

INSTANTIATE_TEST_SUITE_P(Deltas, Lemma1Agreement,
                         ::testing::Values(1, 2, 3, 5, 8));

TEST(Lemma1Agreement, ObserverSeesEveryRound) {
  EngineConfig config;
  config.miner_count = 8;
  config.adversary_fraction = 0.0;
  config.delta = 2;
  config.p = 0.01;
  config.rounds = 100;
  config.seed = 5;
  std::uint64_t calls = 0;
  std::uint64_t last_round = 0;
  ExecutionEngine engine(config, std::make_unique<NullAdversary>());
  (void)engine.run([&](const ExecutionEngine&, std::uint64_t round) {
    ++calls;
    EXPECT_EQ(round, last_round + 1);
    last_round = round;
  });
  EXPECT_EQ(calls, 100u);
}

}  // namespace
}  // namespace neatbound::sim
