// End-to-end experiments tying the analytic bounds to protocol-level
// behaviour: above the paper's bound the simulator shows bounded
// violation depth; inside the PSS attack regime the balancing adversary
// keeps honest views split.  These are the repo's "does the theory
// predict the system" tests; they use moderate sizes to stay fast.
#include <cmath>
#include <gtest/gtest.h>
#include <memory>

#include "bounds/frontier.hpp"
#include "bounds/pss.hpp"
#include "bounds/zhao.hpp"
#include "chains/convergence.hpp"
#include "sim/engine.hpp"
#include "sim/runner.hpp"
#include "sim/strategies.hpp"

namespace neatbound {
namespace {

using sim::AdversaryKind;
using sim::EngineConfig;
using sim::ExperimentConfig;
using sim::ExperimentSummary;

TEST(EndToEnd, SafeRegimeKeepsViolationsShallow) {
  // ν = 0.2, Δ = 3, c = 8: far above the neat bound 2μ/ln(μ/ν) ≈ 1.15.
  ExperimentConfig config;
  config.engine.miner_count = 40;
  config.engine.adversary_fraction = 0.2;
  config.engine.delta = 3;
  config.engine.p = 1.0 / (8.0 * 40.0 * 3.0);
  config.engine.rounds = 20000;
  config.adversary = AdversaryKind::kPrivateWithhold;
  config.seeds = 4;
  const ExperimentSummary summary = sim::run_experiment(config, 8);
  EXPECT_LT(summary.violation_depth.mean(), 8.0);
  EXPECT_EQ(summary.violation_exceeds_t.mean(), 0.0);
}

TEST(EndToEnd, ConvergenceOpportunitiesBeatAdversaryAboveBound) {
  // The operational content of Theorem 1 / Lemma 1: above the bound,
  // C(window) > A(window) with high probability.
  ExperimentConfig config;
  config.engine.miner_count = 40;
  config.engine.adversary_fraction = 0.25;
  config.engine.delta = 2;
  config.engine.p = 1.0 / (6.0 * 40.0 * 2.0);  // c = 6
  config.engine.rounds = 30000;
  config.adversary = AdversaryKind::kMaxDelay;
  config.seeds = 4;
  const ExperimentSummary summary = sim::run_experiment(config, 8);
  EXPECT_GT(summary.convergence_opportunities.mean(),
            summary.adversary_blocks.mean());
}

TEST(EndToEnd, AdversaryOutpacesOpportunitiesBelowBound) {
  // Below the bound (c = 0.6 ≪ 2μ/ln(μ/ν) ≈ 1.9 at ν = 1/3) the adversary
  // mines more blocks than there are convergence opportunities — the
  // premise of consistency fails, matching Theorem 1's condition (10)
  // being violated.
  const auto params = bounds::ProtocolParams::from_c(40, 2, 1.0 / 3.0, 0.6);
  ASSERT_LT(bounds::theorem1_margin(params).log(), 0.0);
  ExperimentConfig config;
  config.engine.miner_count = 40;
  config.engine.adversary_fraction = 1.0 / 3.0;
  config.engine.delta = 2;
  config.engine.p = params.p();
  config.engine.rounds = 30000;
  config.adversary = AdversaryKind::kMaxDelay;
  config.seeds = 4;
  const ExperimentSummary summary = sim::run_experiment(config, 8);
  EXPECT_LT(summary.convergence_opportunities.mean(),
            summary.adversary_blocks.mean());
}

TEST(EndToEnd, BalanceAttackSucceedsInsideRedRegion) {
  // Inside the PSS attack region (1/c > 1/ν − 1/μ) the balancing
  // adversary keeps divergence growing.
  const double nu = 0.4, c = 0.6;
  ASSERT_TRUE(bounds::pss_attack_applies(nu, c));
  EngineConfig config;
  config.miner_count = 40;
  config.adversary_fraction = nu;
  config.delta = 4;
  config.p = 1.0 / (c * 40.0 * 4.0);
  config.rounds = 6000;
  config.seed = 3;
  sim::ExecutionEngine engine(
      config, std::make_unique<sim::BalanceAttackAdversary>(24, config.delta));
  const sim::RunResult result = engine.run();
  EXPECT_GE(result.max_divergence, 10u);
}

TEST(EndToEnd, TheoremOneMarginTracksSimulatedCounts) {
  // The analytic ratio (ᾱ^{2Δ}α₁)/(pνn) should approximate the simulated
  // C/A ratio under max-delay (the adversary mines but never interferes
  // with honest mining patterns).
  const double n = 40, delta = 2, c = 5.0, nu = 0.25;
  const auto params = bounds::ProtocolParams::from_c(n, delta, nu, c);
  const double analytic_ratio = bounds::theorem1_margin(params).linear();

  ExperimentConfig config;
  config.engine.miner_count = 40;
  config.engine.adversary_fraction = nu;
  config.engine.delta = 2;
  config.engine.p = params.p();
  config.engine.rounds = 60000;
  config.adversary = AdversaryKind::kMaxDelay;
  config.seeds = 6;
  const ExperimentSummary summary = sim::run_experiment(config, 8);
  const double simulated_ratio = summary.convergence_opportunities.mean() /
                                 summary.adversary_blocks.mean();
  EXPECT_NEAR(simulated_ratio / analytic_ratio, 1.0, 0.25);
}

TEST(EndToEnd, GrowthMatchesAlphaOverOnePlusDeltaAlphaUnderMaxDelay) {
  // Folklore chain-growth heuristic g ≈ α/(1+Δα) for Δ-delayed delivery;
  // our engine should land near it (max-delay, no adversary blocks).
  EngineConfig config;
  config.miner_count = 30;
  config.adversary_fraction = 0.0;
  config.delta = 6;
  config.p = 0.004;  // α ≈ 0.113, Δα ≈ 0.68
  config.rounds = 40000;
  config.seed = 5;
  sim::ExecutionEngine engine(
      config, std::make_unique<sim::MaxDelayAdversary>(config.delta));
  const sim::RunResult result = engine.run();
  const double alpha = 1.0 - std::pow(1.0 - config.p, 30.0);
  const double heuristic = alpha / (1.0 + static_cast<double>(config.delta) * alpha);
  EXPECT_NEAR(result.chain.growth_per_round, heuristic, heuristic * 0.2);
}

TEST(EndToEnd, QualityNearMuMinusAttackGains) {
  // Chain quality under private withholding stays in [1−ν/μ−slack, 1].
  ExperimentConfig config;
  config.engine.miner_count = 40;
  config.engine.adversary_fraction = 0.3;
  config.engine.delta = 2;
  config.engine.p = 0.002;
  config.engine.rounds = 40000;
  config.adversary = AdversaryKind::kPrivateWithhold;
  config.seeds = 3;
  const ExperimentSummary summary = sim::run_experiment(config, 8);
  const double lower = 1.0 - (0.3 / 0.7) - 0.15;
  EXPECT_GT(summary.chain_quality.mean(), lower);
  EXPECT_LE(summary.chain_quality.mean(), 1.0);
}

}  // namespace
}  // namespace neatbound
