#include "markov/hitting.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "chains/concatenated_chain.hpp"
#include "chains/suffix_chain.hpp"
#include "markov/stationary.hpp"
#include "support/contracts.hpp"

namespace neatbound::markov {
namespace {

TEST(Hitting, TwoStateClosedForm) {
  // P(0→1) = a: expected steps from 0 to 1 is 1/a (geometric).
  const double a = 0.25;
  TransitionMatrix m(2);
  m.set(0, 0, 1.0 - a);
  m.set(0, 1, a);
  m.set(1, 0, 1.0);
  const auto h = expected_hitting_times(m, 1);
  EXPECT_NEAR(h[0], 1.0 / a, 1e-12);
  EXPECT_EQ(h[1], 0.0);
}

TEST(Hitting, DeterministicCycle) {
  TransitionMatrix m(4);
  for (std::size_t i = 0; i < 4; ++i) m.set(i, (i + 1) % 4, 1.0);
  const auto h = expected_hitting_times(m, 0);
  EXPECT_NEAR(h[1], 3.0, 1e-12);
  EXPECT_NEAR(h[2], 2.0, 1e-12);
  EXPECT_NEAR(h[3], 1.0, 1e-12);
  EXPECT_NEAR(expected_return_time(m, 0), 4.0, 1e-12);
}

TEST(Hitting, UnreachableTargetThrows) {
  TransitionMatrix m(2);
  m.set(0, 0, 1.0);  // absorbing; never reaches 1
  m.set(1, 1, 1.0);
  EXPECT_THROW((void)expected_hitting_times(m, 1), ContractViolation);
}

TEST(Hitting, KacFormulaOnGenericChain) {
  // Expected return time = 1/π(state) — Kac's formula.
  TransitionMatrix m(4);
  m.set(0, 1, 0.6);
  m.set(0, 2, 0.4);
  m.set(1, 2, 1.0);
  m.set(2, 3, 0.5);
  m.set(2, 0, 0.5);
  m.set(3, 0, 1.0);
  const auto pi = solve_stationary_direct(m).distribution;
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_NEAR(expected_return_time(m, s), 1.0 / pi[s], 1e-9)
        << "state " << s;
  }
}

TEST(Hitting, KacFormulaOnSuffixChain) {
  // Return time of HN^{≥Δ} equals 1/ᾱ^Δ (via Eq. 37c) — checked without
  // using the closed form on the hitting side.
  const std::uint64_t delta = 3;
  const double alpha = 0.3;
  const chains::SuffixStateSpace space(delta);
  const auto matrix = chains::build_suffix_chain_matrix(space, alpha);
  const std::size_t long_gap =
      space.index_of({chains::SuffixKind::kLongGap, 0});
  const double abar_delta = std::pow(1.0 - alpha, 3.0);
  EXPECT_NEAR(expected_return_time(matrix, long_gap), 1.0 / abar_delta,
              1e-9);
}

TEST(Hitting, ConvergenceOpportunityRecurrenceTime) {
  // On the explicit C_{F‖P}: expected rounds between convergence
  // opportunities = 1/(ᾱ^{2Δ}α₁).  This is the rigorous version of the
  // renewal-style ℓ accounting in the Kiffer comparison.
  const chains::ConcatenatedStateSpace space(1, 3);
  const chains::DetailedStateModel model{.honest_trials = 3.0, .p = 0.1};
  const auto matrix = chains::build_concatenated_matrix(space, model);
  const double rate = chains::convergence_opportunity_probability(
                          model.prob_n(), model.prob_one(), 1)
                          .linear();
  EXPECT_NEAR(expected_return_time(matrix, space.convergence_vertex()),
              1.0 / rate, 1.0 / rate * 1e-8);
}

TEST(Hitting, WaitForHonestBlockIsOneOverAlpha) {
  // The corrected ℓ of the paper's §IV discussion: expected rounds until
  // a round with ≥1 honest block is 1/α, not 1/(pμn).  On the suffix
  // chain, hitting the head state HN^{≤Δ−1}H from the long-gap state
  // takes exactly 1/α rounds in expectation (each round is H w.p. α; the
  // first H lands in the head state from HN^{≥Δ}... via HN^{≥Δ}H).
  const std::uint64_t delta = 2;
  const double alpha = 0.22;
  const chains::SuffixStateSpace space(delta);
  const auto matrix = chains::build_suffix_chain_matrix(space, alpha);
  const std::size_t long_gap =
      space.index_of({chains::SuffixKind::kLongGap, 0});
  const std::size_t long_gap_head =
      space.index_of({chains::SuffixKind::kLongGapTail, 0});
  const auto h = expected_hitting_times(matrix, long_gap_head);
  EXPECT_NEAR(h[long_gap], 1.0 / alpha, 1e-9);
}

}  // namespace
}  // namespace neatbound::markov
