#include "markov/spectral.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "chains/suffix_chain.hpp"
#include "markov/mixing.hpp"
#include "support/contracts.hpp"

namespace neatbound::markov {
namespace {

TransitionMatrix two_state(double a, double b) {
  TransitionMatrix m(2);
  m.set(0, 0, 1.0 - a);
  m.set(0, 1, a);
  m.set(1, 0, b);
  m.set(1, 1, 1.0 - b);
  return m;
}

TEST(Spectral, TwoStateExactEigenvalue) {
  // λ₂ of the two-state chain is 1 − a − b.
  for (const auto& [a, b] : {std::pair{0.3, 0.1}, std::pair{0.05, 0.05},
                            std::pair{0.5, 0.2}}) {
    const auto result = estimate_lambda2(two_state(a, b));
    ASSERT_TRUE(result.converged);
    EXPECT_NEAR(result.lambda2, std::fabs(1.0 - a - b), 1e-9)
        << "a=" << a << " b=" << b;
  }
}

TEST(Spectral, RankOneChainHasFullGap) {
  // Every row identical → chain mixes in one step, λ₂ = 0.
  TransitionMatrix m(3);
  for (std::size_t i = 0; i < 3; ++i) {
    m.set(i, 0, 0.2);
    m.set(i, 1, 0.5);
    m.set(i, 2, 0.3);
  }
  const auto result = estimate_lambda2(m);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.lambda2, 0.0, 1e-9);
  EXPECT_NEAR(result.spectral_gap, 1.0, 1e-9);
}

TEST(Spectral, PredictsMixingTimeOfSlowChain) {
  // Two-state with a = b = 0.01: λ₂ = 0.98, TV(t) = ½·0.98^t; mixing to
  // 1/8 takes ≈ 69 steps; the spectral prediction (without the ½ factor)
  // is ln(1/8)/ln(0.98) ≈ 103 — same order, upper-ish.
  const auto m = two_state(0.01, 0.01);
  const auto result = estimate_lambda2(m);
  ASSERT_TRUE(result.converged);
  const double predicted = mixing_time_from_lambda2(result.lambda2, 1.0 / 8.0);
  const std::vector<double> pi = {0.5, 0.5};
  const auto measured = mixing_time(m, pi, 1.0 / 8.0);
  ASSERT_TRUE(measured.converged);
  EXPECT_GT(predicted, static_cast<double>(measured.time) * 0.5);
  EXPECT_LT(predicted, static_cast<double>(measured.time) * 3.0);
}

TEST(Spectral, SuffixChainComplementIsNilpotent) {
  // Structural fact uncovered by this library: the suffix state F_t is a
  // deterministic function of the last 2Δ rounds' coarse states (an H in
  // the last Δ−1 rounds pins the preceding gap inside the previous Δ
  // rounds; no H there means HN^{≥Δ} regardless of older history).  So
  // P^{2Δ} has identical rows — rank one — and every non-unit eigenvalue
  // of C_F is exactly zero: mixing is purely transient, not geometric.
  for (const std::uint64_t delta : {2ULL, 4ULL, 8ULL}) {
    for (const double alpha : {0.1, 0.3}) {
      const chains::SuffixStateSpace space(delta);
      const auto matrix = chains::build_suffix_chain_matrix(space, alpha);
      const auto spectral = estimate_lambda2(matrix);
      // The estimator bottoms out at its numerical noise floor (repeated
      // collapse + renormalization), so assert "essentially zero" rather
      // than exact zero.
      EXPECT_LT(spectral.lambda2, 0.1)
          << "delta=" << delta << " alpha=" << alpha;
    }
  }
}

TEST(Spectral, SuffixChainMixesWithinTwoDelta) {
  // Corollary of nilpotence: TV reaches ~0 (hence any ε, including 1e-9)
  // within 2Δ steps — mixing is transient, not geometric.
  for (const std::uint64_t delta : {1ULL, 2ULL, 4ULL, 8ULL, 16ULL}) {
    for (const double alpha : {0.05, 0.3, 0.7}) {
      const chains::SuffixStateSpace space(delta);
      const auto matrix = chains::build_suffix_chain_matrix(space, alpha);
      const auto pi = chains::stationary_closed_form_vector(space, alpha);
      const auto loose = mixing_time(matrix, pi, 1.0 / 8.0, 1 << 16);
      ASSERT_TRUE(loose.converged);
      EXPECT_LE(loose.time, 2 * delta)
          << "delta=" << delta << " alpha=" << alpha;
      const auto strict = mixing_time(matrix, pi, 1e-9, 1 << 16);
      ASSERT_TRUE(strict.converged);
      EXPECT_LE(strict.time, 2 * delta)
          << "delta=" << delta << " alpha=" << alpha;
    }
  }
}

TEST(Spectral, MixingPredictionContracts) {
  EXPECT_THROW((void)mixing_time_from_lambda2(1.0, 0.1), ContractViolation);
  EXPECT_THROW((void)mixing_time_from_lambda2(0.5, 0.0), ContractViolation);
  EXPECT_EQ(mixing_time_from_lambda2(0.0, 0.125), 1.0);
}

}  // namespace
}  // namespace neatbound::markov
