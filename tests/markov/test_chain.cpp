#include "markov/chain.hpp"

#include <gtest/gtest.h>

#include "support/contracts.hpp"

namespace neatbound::markov {
namespace {

TransitionMatrix two_state(double a, double b) {
  // P(0→1) = a, P(1→0) = b.
  TransitionMatrix m(2);
  m.set(0, 0, 1.0 - a);
  m.set(0, 1, a);
  m.set(1, 0, b);
  m.set(1, 1, 1.0 - b);
  return m;
}

TEST(TransitionMatrix, SetGetAdd) {
  TransitionMatrix m(3);
  m.set(0, 1, 0.25);
  m.add(0, 1, 0.25);
  EXPECT_DOUBLE_EQ(m.get(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(m.get(1, 2), 0.0);
}

TEST(TransitionMatrix, RowSumAndStochasticCheck) {
  auto m = two_state(0.3, 0.6);
  EXPECT_NEAR(m.row_sum(0), 1.0, 1e-15);
  EXPECT_NO_THROW(m.check_stochastic());
  m.set(0, 0, 0.5);  // row 0 now sums to 0.8
  EXPECT_THROW(m.check_stochastic(), ContractViolation);
}

TEST(TransitionMatrix, ApplyLeftEvolvesDistribution) {
  const auto m = two_state(0.5, 0.5);
  std::vector<double> x = {1.0, 0.0};
  std::vector<double> y(2);
  m.apply_left(x, y);
  EXPECT_DOUBLE_EQ(y[0], 0.5);
  EXPECT_DOUBLE_EQ(y[1], 0.5);
}

TEST(TransitionMatrix, ApplyLeftSizeChecked) {
  const auto m = two_state(0.5, 0.5);
  std::vector<double> x = {1.0};
  std::vector<double> y(2);
  EXPECT_THROW(m.apply_left(x, y), ContractViolation);
}

TEST(TransitionMatrix, IndexBoundsChecked) {
  TransitionMatrix m(2);
  EXPECT_THROW((void)m.get(2, 0), ContractViolation);
  EXPECT_THROW(m.set(0, 2, 0.1), ContractViolation);
  EXPECT_THROW(m.set(0, 0, 1.5), ContractViolation);
}

TEST(MarkovChain, ValidatesOnConstruction) {
  TransitionMatrix bad(2);
  bad.set(0, 0, 0.5);  // rows don't sum to 1
  EXPECT_THROW(MarkovChain{std::move(bad)}, ContractViolation);
}

TEST(MarkovChain, DefaultAndCustomNames) {
  const MarkovChain unnamed(two_state(0.2, 0.4));
  EXPECT_EQ(unnamed.state_name(0), "s0");
  const MarkovChain named(two_state(0.2, 0.4), {"idle", "busy"});
  EXPECT_EQ(named.state_name(1), "busy");
  EXPECT_EQ(named.size(), 2u);
}

TEST(MarkovChain, NameCountMustMatch) {
  EXPECT_THROW(MarkovChain(two_state(0.2, 0.4), {"only-one"}),
               ContractViolation);
}

}  // namespace
}  // namespace neatbound::markov
