#include <gtest/gtest.h>

#include "chains/suffix_chain.hpp"
#include "markov/stationary.hpp"
#include "support/contracts.hpp"

namespace neatbound::markov {
namespace {

TransitionMatrix two_state(double a, double b) {
  TransitionMatrix m(2);
  m.set(0, 0, 1.0 - a);
  m.set(0, 1, a);
  m.set(1, 0, b);
  m.set(1, 1, 1.0 - b);
  return m;
}

TEST(StationaryDirect, TwoStateExact) {
  const double a = 0.3, b = 0.1;
  const auto result = solve_stationary_direct(two_state(a, b));
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.distribution[0], b / (a + b), 1e-14);
  EXPECT_NEAR(result.distribution[1], a / (a + b), 1e-14);
  EXPECT_LT(result.residual, 1e-14);
}

TEST(StationaryDirect, AgreesWithPowerIteration) {
  TransitionMatrix m(5);
  // An arbitrary irreducible chain.
  m.set(0, 1, 1.0);
  m.set(1, 2, 0.5);
  m.set(1, 0, 0.5);
  m.set(2, 3, 0.9);
  m.set(2, 2, 0.1);
  m.set(3, 4, 1.0);
  m.set(4, 0, 0.7);
  m.set(4, 2, 0.3);
  const auto direct = solve_stationary_direct(m);
  const auto power = solve_stationary_power(m);
  ASSERT_TRUE(power.converged);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(direct.distribution[i], power.distribution[i], 1e-10);
  }
}

TEST(StationaryDirect, MatchesSuffixChainClosedForm) {
  // Third independent derivation of Eq. (37): direct Gaussian elimination.
  for (const std::uint64_t delta : {1ULL, 3ULL, 8ULL}) {
    const chains::SuffixStateSpace space(delta);
    for (const double alpha : {0.1, 0.4}) {
      const auto matrix = chains::build_suffix_chain_matrix(space, alpha);
      const auto closed = chains::stationary_closed_form_vector(space, alpha);
      const auto direct = solve_stationary_direct(matrix);
      for (std::size_t i = 0; i < space.size(); ++i) {
        EXPECT_NEAR(direct.distribution[i], closed[i], 1e-12)
            << "delta=" << delta << " alpha=" << alpha << " state=" << i;
      }
    }
  }
}

TEST(StationaryDirect, WorksOnPeriodicChain) {
  // Unlike power iteration (which oscillates), the direct solve handles a
  // 2-cycle: its stationary distribution is uniform.
  TransitionMatrix m(2);
  m.set(0, 1, 1.0);
  m.set(1, 0, 1.0);
  const auto result = solve_stationary_direct(m);
  EXPECT_NEAR(result.distribution[0], 0.5, 1e-14);
  EXPECT_NEAR(result.distribution[1], 0.5, 1e-14);
}

TEST(StationaryDirect, RejectsReducibleChain) {
  TransitionMatrix m(2);
  m.set(0, 0, 1.0);
  m.set(1, 1, 1.0);  // two closed classes: no unique stationary law
  EXPECT_THROW((void)solve_stationary_direct(m), ContractViolation);
}

}  // namespace
}  // namespace neatbound::markov
