#include "markov/structure.hpp"

#include <gtest/gtest.h>

#include "support/contracts.hpp"

namespace neatbound::markov {
namespace {

TransitionMatrix directed_cycle(std::size_t n) {
  TransitionMatrix m(n);
  for (std::size_t i = 0; i < n; ++i) m.set(i, (i + 1) % n, 1.0);
  return m;
}

TEST(Structure, SingleStateSelfLoop) {
  TransitionMatrix m(1);
  m.set(0, 0, 1.0);
  EXPECT_TRUE(is_irreducible(m));
  EXPECT_EQ(period(m), 1u);
  EXPECT_TRUE(is_ergodic(m));
}

TEST(Structure, TwoDisconnectedComponents) {
  TransitionMatrix m(4);
  m.set(0, 1, 1.0);
  m.set(1, 0, 1.0);
  m.set(2, 3, 1.0);
  m.set(3, 2, 1.0);
  const auto comp = strongly_connected_components(m);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[2], comp[3]);
  EXPECT_NE(comp[0], comp[2]);
  EXPECT_FALSE(is_irreducible(m));
}

TEST(Structure, AbsorbingStateBreaksIrreducibility) {
  TransitionMatrix m(2);
  m.set(0, 1, 1.0);
  m.set(1, 1, 1.0);  // absorbing
  EXPECT_FALSE(is_irreducible(m));
}

TEST(Structure, CyclesHavePeriodEqualToLength) {
  for (const std::size_t n : {2, 3, 5, 8}) {
    const auto m = directed_cycle(n);
    EXPECT_TRUE(is_irreducible(m));
    EXPECT_EQ(period(m), n);
    EXPECT_FALSE(is_ergodic(m));
  }
}

TEST(Structure, SelfLoopForcesAperiodicity) {
  auto m = directed_cycle(4);
  // Add a self-loop at state 0 (renormalize its row).
  m.set(0, 1, 0.5);
  m.set(0, 0, 0.5);
  EXPECT_TRUE(is_irreducible(m));
  EXPECT_EQ(period(m), 1u);
  EXPECT_TRUE(is_ergodic(m));
}

TEST(Structure, TwoCyclesGcd) {
  // States 0..3: cycle 0→1→0 (length 2) and 0→2→3→0 (length 3) — but a
  // shared state makes gcd(2,3) = 1.
  TransitionMatrix m(4);
  m.set(0, 1, 0.5);
  m.set(1, 0, 1.0);
  m.set(0, 2, 0.5);
  m.set(2, 3, 1.0);
  m.set(3, 0, 1.0);
  EXPECT_TRUE(is_irreducible(m));
  EXPECT_EQ(period(m), 1u);
}

TEST(Structure, EvenCyclesKeepPeriodTwo) {
  // Cycle lengths 2 (0→1→0) and 4 (0→2→3→1→0) → period gcd(2,4) = 2.
  TransitionMatrix m(4);
  m.set(0, 1, 0.5);
  m.set(0, 2, 0.5);
  m.set(1, 0, 1.0);
  m.set(2, 3, 1.0);
  m.set(3, 1, 1.0);
  EXPECT_TRUE(is_irreducible(m));
  EXPECT_EQ(period(m), 2u);
}

TEST(Structure, PeriodRequiresIrreducible) {
  TransitionMatrix m(2);
  m.set(0, 0, 1.0);
  m.set(1, 1, 1.0);
  EXPECT_THROW((void)period(m), ContractViolation);
}

TEST(Structure, LargeRandomishChainIsErgodic) {
  // A chain with full support is trivially ergodic; sanity at size 50.
  const std::size_t n = 50;
  TransitionMatrix m(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      m.set(i, j, 1.0 / static_cast<double>(n));
    }
  }
  EXPECT_TRUE(is_ergodic(m));
}

}  // namespace
}  // namespace neatbound::markov
