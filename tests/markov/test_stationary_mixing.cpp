#include <cmath>
#include <gtest/gtest.h>

#include "markov/mixing.hpp"
#include "markov/stationary.hpp"
#include "support/contracts.hpp"

namespace neatbound::markov {
namespace {

TransitionMatrix two_state(double a, double b) {
  TransitionMatrix m(2);
  m.set(0, 0, 1.0 - a);
  m.set(0, 1, a);
  m.set(1, 0, b);
  m.set(1, 1, 1.0 - b);
  return m;
}

TEST(Stationary, TwoStateClosedForm) {
  // π = (b, a)/(a+b).
  const double a = 0.3, b = 0.1;
  const auto m = two_state(a, b);
  for (const auto& result :
       {solve_stationary_power(m), solve_stationary_fixed_point(m)}) {
    ASSERT_TRUE(result.converged);
    EXPECT_NEAR(result.distribution[0], b / (a + b), 1e-10);
    EXPECT_NEAR(result.distribution[1], a / (a + b), 1e-10);
    EXPECT_LT(result.residual, 1e-10);
  }
}

TEST(Stationary, UniformChainIsUniform) {
  const std::size_t n = 8;
  TransitionMatrix m(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      m.set(i, j, 1.0 / static_cast<double>(n));
    }
  }
  const auto result = solve_stationary_power(m);
  for (const double pi : result.distribution) {
    EXPECT_NEAR(pi, 1.0 / static_cast<double>(n), 1e-12);
  }
}

TEST(Stationary, SumsToOne) {
  const auto m = two_state(0.9, 0.05);
  const auto result = solve_stationary_power(m);
  double sum = 0.0;
  for (const double x : result.distribution) sum += x;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Stationary, BothSolversAgree) {
  // A 4-state chain with asymmetric structure.
  TransitionMatrix m(4);
  m.set(0, 1, 0.7);
  m.set(0, 3, 0.3);
  m.set(1, 2, 1.0);
  m.set(2, 0, 0.4);
  m.set(2, 2, 0.6);
  m.set(3, 0, 0.5);
  m.set(3, 1, 0.5);
  const auto a = solve_stationary_power(m);
  const auto b = solve_stationary_fixed_point(m);
  ASSERT_TRUE(a.converged);
  ASSERT_TRUE(b.converged);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(a.distribution[i], b.distribution[i], 1e-9);
  }
}

TEST(Stationary, ResidualOfExactPiIsZero) {
  const auto m = two_state(0.2, 0.4);
  const std::vector<double> pi = {2.0 / 3.0, 1.0 / 3.0};
  EXPECT_LT(stationarity_residual(m, pi), 1e-15);
}

TEST(Stationary, ResidualDetectsNonStationary) {
  const auto m = two_state(0.2, 0.4);
  const std::vector<double> not_pi = {0.5, 0.5};
  EXPECT_GT(stationarity_residual(m, not_pi), 0.01);
}

TEST(TotalVariation, Properties) {
  const std::vector<double> a = {1.0, 0.0};
  const std::vector<double> b = {0.0, 1.0};
  EXPECT_DOUBLE_EQ(total_variation(a, b), 1.0);
  EXPECT_DOUBLE_EQ(total_variation(a, a), 0.0);
  const std::vector<double> c = {0.5, 0.5};
  EXPECT_DOUBLE_EQ(total_variation(a, c), 0.5);
}

TEST(TotalVariation, SizeChecked) {
  const std::vector<double> a = {1.0};
  const std::vector<double> b = {0.5, 0.5};
  EXPECT_THROW((void)total_variation(a, b), ContractViolation);
}

TEST(Mixing, TwoStateGeometricRate) {
  // For the two-state chain the TV from stationarity contracts by a
  // factor |1−a−b| per step; with a = b = 0.5 mixing is immediate.
  const auto instant = two_state(0.5, 0.5);
  const std::vector<double> pi = {0.5, 0.5};
  const auto r = mixing_time(instant, pi, 1.0 / 8.0);
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.time, 1u);
}

TEST(Mixing, SlowChainTakesLonger) {
  const double a = 0.01, b = 0.01;
  const auto slow = two_state(a, b);
  const std::vector<double> pi = {0.5, 0.5};
  const auto r = mixing_time(slow, pi, 1.0 / 8.0);
  ASSERT_TRUE(r.converged);
  // TV after t steps = ½·(0.98)^t; ≤ 1/8 needs t ≥ ln(1/4)/ln(0.98) ≈ 69.
  EXPECT_NEAR(static_cast<double>(r.time), 69.0, 2.0);
}

TEST(Mixing, TimeZeroWhenStartingAtStationary) {
  // A chain whose every row equals π mixes in one step from any start;
  // epsilon = 0.6 > max TV at t=0 only if start is near π.  From point
  // masses the TV at t = 0 is 1 − min π, so expect time 1 when ε < that.
  const auto m = two_state(0.3, 0.7);
  const std::vector<double> pi = {0.7, 0.3};
  const auto r = mixing_time(m, pi, 0.75);
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.time, 0u);
}

TEST(Mixing, TvFromStateMatchesManualEvolution) {
  const auto m = two_state(0.3, 0.1);
  const std::vector<double> pi = {0.25, 0.75};
  const double tv0 = tv_from_state(m, 0, 0, pi);
  EXPECT_NEAR(tv0, 0.75, 1e-12);  // point mass at 0 vs π
  const double tv1 = tv_from_state(m, 0, 1, pi);
  // After one step from state 0: (0.7, 0.3); TV vs π = 0.45.
  EXPECT_NEAR(tv1, 0.45, 1e-12);
}

TEST(Mixing, ReportsNonConvergenceOnPeriodicChain) {
  // A 2-cycle never mixes; distribution oscillates.
  TransitionMatrix m(2);
  m.set(0, 1, 1.0);
  m.set(1, 0, 1.0);
  const std::vector<double> pi = {0.5, 0.5};
  const auto r = mixing_time(m, pi, 0.1, /*max_steps=*/100);
  EXPECT_FALSE(r.converged);
}

}  // namespace
}  // namespace neatbound::markov
