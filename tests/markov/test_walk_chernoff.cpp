#include <cmath>
#include <gtest/gtest.h>

#include "markov/chernoff.hpp"
#include "markov/mixing.hpp"
#include "markov/stationary.hpp"
#include "markov/walk.hpp"
#include "support/contracts.hpp"

namespace neatbound::markov {
namespace {

TransitionMatrix two_state(double a, double b) {
  TransitionMatrix m(2);
  m.set(0, 0, 1.0 - a);
  m.set(0, 1, a);
  m.set(1, 0, b);
  m.set(1, 1, 1.0 - b);
  return m;
}

TEST(RandomWalk, VisitFrequenciesMatchStationary) {
  const double a = 0.3, b = 0.1;
  const auto m = two_state(a, b);
  RandomWalk walk(m, 0, Rng(99));
  const std::uint64_t steps = 400000;
  const auto visits = walk.visit_counts(steps);
  const double freq1 =
      static_cast<double>(visits[1]) / static_cast<double>(steps);
  EXPECT_NEAR(freq1, a / (a + b), 0.01);
}

TEST(RandomWalk, StepReturnsCurrentState) {
  const auto m = two_state(0.5, 0.5);
  RandomWalk walk(m, 0, Rng(7));
  for (int i = 0; i < 10; ++i) {
    const std::size_t stepped = walk.step();
    EXPECT_EQ(stepped, walk.current());
  }
}

TEST(RandomWalk, DeterministicChainFollowsCycle) {
  TransitionMatrix m(3);
  m.set(0, 1, 1.0);
  m.set(1, 2, 1.0);
  m.set(2, 0, 1.0);
  RandomWalk walk(m, 0, Rng(1));
  EXPECT_EQ(walk.step(), 1u);
  EXPECT_EQ(walk.step(), 2u);
  EXPECT_EQ(walk.step(), 0u);
}

TEST(RandomWalk, StartOutOfRangeThrows) {
  const auto m = two_state(0.5, 0.5);
  EXPECT_THROW(RandomWalk(m, 5, Rng(1)), ContractViolation);
}

TEST(PiNorm, UniformOverUniformIsOne) {
  const std::vector<double> phi = {0.25, 0.25, 0.25, 0.25};
  EXPECT_NEAR(pi_norm(phi, phi), 1.0, 1e-12);
}

TEST(PiNorm, PointMassValue) {
  // ‖δ₀‖_π = 1/sqrt(π₀).
  const std::vector<double> phi = {1.0, 0.0};
  const std::vector<double> pi = {0.25, 0.75};
  EXPECT_NEAR(pi_norm(phi, pi), 2.0, 1e-12);
}

TEST(PiNorm, RequiresSupportInclusion) {
  const std::vector<double> phi = {0.5, 0.5};
  const std::vector<double> pi = {1.0, 0.0};
  EXPECT_THROW((void)pi_norm(phi, pi), ContractViolation);
}

TEST(PiNorm, BoundFromMinDominates) {
  const std::vector<double> phi = {0.9, 0.1};
  const std::vector<double> pi = {0.6, 0.4};
  EXPECT_LE(pi_norm(phi, pi), pi_norm_bound_from_min(0.4) + 1e-12);
}

TEST(MarkovChernoff, BoundDecaysWithSteps) {
  MarkovChernoffParams p;
  p.stationary_mass = 0.01;
  p.delta = 0.5;
  p.mixing_time = 4.0;
  p.phi_pi_norm = 2.0;
  p.steps = 1000;
  const double b1 = markov_chernoff_lower(p).log();
  p.steps = 2000;
  const double b2 = markov_chernoff_lower(p).log();
  // Exponent is linear in T (the paper's exp(−Ω(T))).
  EXPECT_NEAR(b2 - std::log(2.0), 2.0 * (b1 - std::log(2.0)), 1e-9);
}

TEST(MarkovChernoff, MatchesEq47Shape) {
  // Eq. (47): exponent = −δ²·(Tᾱ^{2Δ}α₁)/(72τ).
  MarkovChernoffParams p;
  p.stationary_mass = 0.02;
  p.delta = 0.3;
  p.mixing_time = 7.0;
  p.phi_pi_norm = 1.5;
  p.constant = 2.0;
  p.steps = 5000;
  const double expected = std::log(2.0) + std::log(1.5) -
                          0.09 * 0.02 * 5000.0 / (72.0 * 7.0);
  EXPECT_NEAR(markov_chernoff_lower(p).log(), expected, 1e-12);
}

TEST(MarkovChernoff, LongerMixingWeakensBound) {
  MarkovChernoffParams p;
  p.stationary_mass = 0.01;
  p.delta = 0.5;
  p.steps = 1000;
  p.mixing_time = 2.0;
  const double fast = markov_chernoff_lower(p).log();
  p.mixing_time = 20.0;
  const double slow = markov_chernoff_lower(p).log();
  EXPECT_LT(fast, slow);
}

TEST(MarkovChernoff, ContractChecks) {
  MarkovChernoffParams p;
  p.stationary_mass = 0.01;
  p.delta = 1.5;  // invalid for lower tail
  p.steps = 10;
  EXPECT_THROW((void)markov_chernoff_lower(p), ContractViolation);
  p.delta = 0.5;
  p.mixing_time = 0.5;  // < 1
  EXPECT_THROW((void)markov_chernoff_lower(p), ContractViolation);
}

TEST(MarkovChernoff, EmpiricalConcentrationWithinBound) {
  // Count visits to state 1 of a two-state chain over T steps, many
  // repetitions; the observed lower-tail frequency must not exceed the
  // bound (the bound is loose, so this mostly guards sign errors).
  const double a = 0.2, b = 0.2;
  const auto m = two_state(a, b);
  const auto pi = solve_stationary_power(m).distribution;
  const std::uint64_t steps = 2000;
  const double mass = pi[1];
  const double delta = 0.5;
  int below = 0;
  const int reps = 300;
  for (int r = 0; r < reps; ++r) {
    RandomWalk walk(m, 0, Rng(1000 + static_cast<std::uint64_t>(r)));
    const auto visits = walk.visit_counts(steps);
    const double count = static_cast<double>(visits[1]);
    if (count <= (1.0 - delta) * mass * static_cast<double>(steps)) ++below;
  }
  const auto mix = mixing_time(m, pi, 1.0 / 8.0);
  MarkovChernoffParams p;
  p.stationary_mass = mass;
  p.steps = static_cast<double>(steps);
  p.delta = delta;
  p.mixing_time = std::max(1.0, static_cast<double>(mix.time));
  p.phi_pi_norm = pi_norm(std::vector<double>{1.0, 0.0}, pi);
  const double bound = markov_chernoff_lower(p).linear();
  EXPECT_LE(static_cast<double>(below) / reps, std::min(1.0, bound) + 0.02);
}

}  // namespace
}  // namespace neatbound::markov
