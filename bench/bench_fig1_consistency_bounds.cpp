// Figure 1 reproduction: maximum tolerable adversarial fraction ν_max vs
// c = 1/(pnΔ) at n = 10⁵, Δ = 10¹³ for the paper's three curves (magenta
// = Zhao neat bound, blue = PSS consistency, red = PSS attack), extended
// with the exact Theorem-1 frontier, the full Theorem-2 expression, the
// exact PSS condition, and both Kiffer renewal variants.
//
// Flags: --n, --delta, --points, plus the uniform --threads/--csv/--json
// (each c's frontier solves run as one pool job).
#include <iostream>

#include "analysis/figure1.hpp"
#include "exp/bench_io.hpp"
#include "exp/grid.hpp"
#include "support/cli.hpp"
#include "support/parallel.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace neatbound;
  CliArgs args(argc, argv);
  const double n = args.get_double("n", 1e5);
  const double delta = args.get_double("delta", 1e13);
  const auto points = static_cast<std::size_t>(args.get_uint("points", 25));
  const exp::BenchOptions io = exp::parse_bench_options(args);
  if (args.handle_help(std::cout)) return 0;
  args.reject_unconsumed();

  std::cout << "# Figure 1 — nu_max vs c  (n=" << format_general(n)
            << ", delta=" << format_general(delta) << ")\n"
            << "# paper curves: zhao_neat (magenta), pss (blue), attack (red)\n";

  exp::BenchReporter report("bench_fig1_consistency_bounds", io);
  report.set_meta_number("n", n);
  report.set_meta_number("delta", delta);

  exp::SweepGrid grid;
  grid.axis("c", analysis::figure1_c_grid(points));
  const std::size_t cells = grid.size();

  std::vector<analysis::Figure1Row> rows(cells);
  parallel_for_indexed(cells, io.threads, [&](std::size_t i) {
    const double c = grid.point(i).value("c");
    rows[i] = analysis::figure1_series({&c, 1}, n, delta).front();
  });

  report.begin_section("", {"c", "zhao_neat", "zhao_thm2", "zhao_thm1_exact",
                            "pss_closed", "pss_exact", "attack",
                            "kiffer_corr", "kiffer_pub"});
  for (const auto& row : rows) {
    report.add_row({format_general(row.c, 4),
                    format_fixed(row.nu_zhao_neat, 6),
                    format_fixed(row.nu_zhao_theorem2, 6),
                    format_fixed(row.nu_zhao_theorem1, 6),
                    format_fixed(row.nu_pss, 6),
                    format_fixed(row.nu_pss_exact, 6),
                    format_fixed(row.nu_attack, 6),
                    format_fixed(row.nu_kiffer_corrected, 6),
                    format_fixed(row.nu_kiffer_published, 6)});
  }

  // The qualitative claims of the figure, checked programmatically.
  bool magenta_above_blue = true, red_above_magenta = true;
  for (const auto& row : rows) {
    magenta_above_blue &= row.nu_zhao_neat > row.nu_pss;
    red_above_magenta &= row.nu_attack > row.nu_zhao_neat;
  }
  report.set_meta("magenta_above_blue", magenta_above_blue ? "yes" : "no");
  report.set_meta("red_above_magenta", red_above_magenta ? "yes" : "no");
  report.finish();
  std::cout << "\ncheck: magenta strictly above blue at every c: "
            << (magenta_above_blue ? "yes" : "NO") << '\n'
            << "check: red (attack) strictly above magenta at every c: "
            << (red_above_magenta ? "yes" : "NO") << '\n';
  return (magenta_above_blue && red_above_magenta) ? 0 : 1;
}
