// Inequality (19)/(47) machinery: ε-mixing times τ(1/8) of the suffix
// chain C_F as Δ grows, and the empirical concentration of the
// convergence-opportunity count C(t₀, t₀+T−1) against the
// Chernoff–Hoeffding-for-Markov-chains lower-tail bound the paper invokes.
#include <cmath>
#include <iostream>

#include "bounds/params.hpp"
#include "chains/convergence.hpp"
#include "chains/suffix_chain.hpp"
#include "markov/chernoff.hpp"
#include "markov/mixing.hpp"
#include "sim/aggregate.hpp"
#include "stats/summary.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace neatbound;
  CliArgs args(argc, argv);
  const std::uint64_t rounds = args.get_uint("rounds", 200000);
  const auto seeds = static_cast<std::uint32_t>(args.get_uint("seeds", 40));
  if (args.handle_help(std::cout)) return 0;
  args.reject_unconsumed();

  std::cout << "# Part 1 — eps-mixing time tau(1/8) of the suffix chain C_F\n"
            << "# structural bound: F_t is a function of the last 2*delta "
               "rounds, so tau(eps) <= 2*delta for EVERY eps — C_F's "
               "complement spectrum is nilpotent (lambda2 = 0)\n";
  TablePrinter mixing_table({"delta", "alpha", "states", "tau(1/8)",
                             "tau(1e-9)", "2*delta bound", "final TV"});
  bool tau_bound_holds = true;
  for (const std::uint64_t delta : {1ULL, 2ULL, 4ULL, 8ULL, 16ULL}) {
    for (const double alpha : {0.05, 0.2, 0.5}) {
      const chains::SuffixStateSpace space(delta);
      const auto matrix = chains::build_suffix_chain_matrix(space, alpha);
      const auto pi = chains::stationary_closed_form_vector(space, alpha);
      const auto mix = markov::mixing_time(matrix, pi, 1.0 / 8.0, 1 << 16);
      const auto strict = markov::mixing_time(matrix, pi, 1e-9, 1 << 16);
      tau_bound_holds &= strict.time <= 2 * delta;
      mixing_table.add_row({std::to_string(delta), format_fixed(alpha, 2),
                            std::to_string(2 * delta + 1),
                            std::to_string(mix.time),
                            std::to_string(strict.time),
                            std::to_string(2 * delta),
                            format_sci(mix.final_tv, 2)});
    }
  }
  mixing_table.print(std::cout);
  std::cout << "check: tau(1e-9) <= 2*delta on every row: "
            << (tau_bound_holds ? "yes" : "NO") << '\n';

  std::cout << "\n# Part 2 — concentration of C(t0, t0+T-1) across seeds vs "
               "the Eq. (47)-shaped lower-tail bound\n"
            << "# T=" << rounds << " seeds=" << seeds << '\n';
  TablePrinter conc_table({"delta", "c", "E[C]", "mean C", "sd C",
                           "delta2", "P[C <= (1-d2)E] emp",
                           "Eq.(47) bound"});
  const double n = 200, nu = 0.25;
  for (const double delta : {2.0, 4.0}) {
    for (const double c : {2.0, 6.0}) {
      const auto params = bounds::ProtocolParams::from_c(n, delta, nu, c);
      const double rate = chains::convergence_opportunity_probability(
                              params.alpha_bar(), params.alpha1(),
                              static_cast<std::uint64_t>(delta))
                              .linear();
      const double expected = rate * static_cast<double>(rounds);

      stats::RunningStats counts;
      const double delta2 = 0.2;
      std::uint32_t below = 0;
      for (std::uint32_t k = 0; k < seeds; ++k) {
        sim::AggregateConfig config;
        config.honest_trials = params.honest_trials();
        config.adversary_trials = 0.0;
        config.p = params.p();
        config.delta = static_cast<std::uint64_t>(delta);
        config.rounds = rounds;
        config.seed = 50000 + k;
        const auto result = sim::run_aggregate(config);
        const auto count =
            static_cast<double>(result.convergence_opportunities);
        counts.add(count);
        if (count <= (1.0 - delta2) * expected) ++below;
      }

      // The Eq. (47) shape with tau from the explicit C_F chain and
      // phi = stationary (so ||phi||_pi = 1); constants c = 1.
      const chains::SuffixStateSpace space(
          static_cast<std::uint64_t>(delta));
      const auto matrix = chains::build_suffix_chain_matrix(
          space, params.alpha().linear());
      const auto pi = chains::stationary_closed_form_vector(
          space, params.alpha().linear());
      const auto mix = markov::mixing_time(matrix, pi, 1.0 / 8.0, 1 << 16);
      markov::MarkovChernoffParams mc;
      mc.stationary_mass = rate;
      mc.steps = static_cast<double>(rounds);
      mc.delta = delta2;
      mc.mixing_time = std::max<double>(1.0, static_cast<double>(mix.time));
      mc.phi_pi_norm = 1.0;
      const double bound = markov::markov_chernoff_lower(mc).linear();

      conc_table.add_row(
          {format_fixed(delta, 0), format_fixed(c, 0),
           format_fixed(expected, 1), format_fixed(counts.mean(), 1),
           format_fixed(counts.stddev(), 1), format_fixed(delta2, 2),
           format_fixed(static_cast<double>(below) / seeds, 3),
           format_sci(std::min(1.0, bound), 2)});
    }
  }
  conc_table.print(std::cout);
  std::cout << "\nreading: the empirical lower-tail frequency must not "
               "exceed the bound; both shrink exponentially in T "
               "(Inequality 19).\n";
  return 0;
}
