// Recurrence-time accounting: the quantitative version of the paper's
// critique of the renewal analysis in [6] (Kiffer et al.).
//
// Table 1 — waiting time for an honest block, three ways:
//   1/(pμn)  (the computation the paper flags as wrong),
//   1/α      (the correction the paper prescribes),
//   the expected hitting time measured on the explicit suffix chain.
//
// Table 2 — expected rounds between convergence opportunities:
//   1/(ᾱ^{2Δ}α₁)  (Kac's formula + Eq. 44), vs the return time measured
//   on the explicit C_{F‖P}, vs the renewal estimate 2Δ + 2ℓ.
//
// Orchestrated: each row's chain solve runs as one job on the shared
// pool (--threads); rows are emitted in grid order.
#include <cmath>
#include <iostream>

#include "bounds/kiffer.hpp"
#include "bounds/params.hpp"
#include "chains/concatenated_chain.hpp"
#include "chains/suffix_chain.hpp"
#include "exp/bench_io.hpp"
#include "exp/grid.hpp"
#include "markov/hitting.hpp"
#include "support/cli.hpp"
#include "support/parallel.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace neatbound;
  CliArgs args(argc, argv);
  const exp::BenchOptions io = exp::parse_bench_options(args);
  if (args.handle_help(std::cout)) return 0;
  args.reject_unconsumed();

  std::cout << "# Recurrence times — the renewal-analysis critique, "
               "quantified\n";
  exp::BenchReporter report("bench_recurrence_times", io);

  {
    exp::SweepGrid grid;
    grid.axis("pmn", {0.05, 0.2, 0.5, 0.8, 0.95});
    const auto points = grid.points();
    std::vector<std::vector<std::string>> rows(points.size());
    parallel_for_indexed(points.size(), io.threads, [&](std::size_t i) {
      const double pmn = points[i].value("pmn");
      const double n_trials = 100.0;
      const double p = pmn / n_trials;
      const double alpha = 1.0 - std::pow(1.0 - p, n_trials);
      // Hitting HN^{≥Δ}H-type head from the long-gap state on C_F with
      // Δ = 2: geometric with success probability α.
      const std::uint64_t delta = 2;
      const chains::SuffixStateSpace space(delta);
      const auto matrix = chains::build_suffix_chain_matrix(space, alpha);
      const auto h = markov::expected_hitting_times(
          matrix, space.index_of({chains::SuffixKind::kLongGapTail, 0}));
      const double measured =
          h[space.index_of({chains::SuffixKind::kLongGap, 0})];
      rows[i] = {format_fixed(pmn, 2), format_fixed(1.0 / pmn, 3),
                 format_fixed(1.0 / alpha, 3), format_fixed(measured, 3),
                 format_fixed((1.0 / pmn) / (1.0 / alpha), 3)};
    });
    report.begin_section(
        "Table 1 — expected rounds until an honest block",
        {"p*mu*n per round", "1/(p*mu*n) [as published]",
         "1/alpha [corrected]", "suffix-chain hitting time",
         "published/true"});
    for (const auto& row : rows) report.add_row(row);
  }

  {
    exp::SweepGrid grid;
    grid.axis("delta", {1, 2});
    grid.axis("m", {2, 3});
    const auto points = grid.points();
    std::vector<std::vector<std::string>> rows(points.size());
    parallel_for_indexed(points.size(), io.threads, [&](std::size_t i) {
      const auto delta = static_cast<std::uint64_t>(points[i].value("delta"));
      const auto m = static_cast<std::uint32_t>(points[i].value("m"));
      const double p = 0.08;
      const chains::DetailedStateModel model{
          .honest_trials = static_cast<double>(m), .p = p};
      const chains::ConcatenatedStateSpace space(delta, m);
      const auto matrix = chains::build_concatenated_matrix(space, model);
      const double rate = chains::convergence_opportunity_probability(
                              model.prob_n(), model.prob_one(), delta)
                              .linear();
      const double kac = 1.0 / rate;
      const double measured = markov::expected_return_time(
          matrix, space.convergence_vertex());
      const double alpha = model.prob_some().linear();
      const double renewal =
          2.0 * static_cast<double>(delta) + 2.0 / alpha;
      rows[i] = {std::to_string(delta), std::to_string(m),
                 format_fixed(p, 2), format_fixed(kac, 2),
                 format_fixed(measured, 2), format_fixed(renewal, 2),
                 format_fixed(renewal / kac, 3)};
    });
    report.begin_section(
        "Table 2 — expected rounds between convergence opportunities "
        "(small-scale exact chains)",
        {"delta", "mu*n", "p", "1/(abar^2d*a1) Kac", "C_{F||P} return time",
         "renewal 2d+2/alpha", "renewal/true"});
    for (const auto& row : rows) report.add_row(row);
  }

  report.finish();
  std::cout << "\nreading: 1/(p*mu*n) underestimates the true wait 1/alpha "
               "increasingly as the per-round block rate grows — the error "
               "the paper flags in [6]'s ell_11/ell_10.  Kac's formula and "
               "the explicit-chain return time agree to rounding — the "
               "Markov analysis is exact — while the renewal estimate "
               "misses in either direction depending on parameters (ratios "
               "0.97–1.6 here): it is neither tight nor safely one-sided.  "
               "The paper's Theorem 1 sidesteps the issue by counting "
               "pattern occurrences on the chain directly.\n";
  return 0;
}
