// End-to-end consistency sweep: empirical violation depth versus c as c
// crosses the neat bound 2μ/ln(μ/ν), under the private-withholding
// adversary with worst-case Δ delays (execution engine, multi-seed).
//
// Expected shape: for c comfortably above the bound the violation depth
// stays shallow and flat in T; as c approaches/crosses the bound the
// adversary's private forks overtake often and the depth blows up.
//
// Orchestrated: all (ν, c-multiple, seed) engine runs share one work pool
// (--threads); summaries are bit-identical to the serial path.
#include <iostream>

#include "bounds/zhao.hpp"
#include "exp/bench_io.hpp"
#include "exp/orchestrator.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace neatbound;
  CliArgs args(argc, argv);
  const auto miners = static_cast<std::uint32_t>(args.get_uint("miners", 40));
  const std::uint64_t delta = args.get_uint("delta", 3);
  const std::uint64_t rounds = args.get_uint("rounds", 30000);
  const auto seeds = static_cast<std::uint32_t>(args.get_uint("seeds", 6));
  const std::uint64_t violation_t = args.get_uint("violation-t", 8);
  const exp::BenchOptions io = exp::parse_bench_options(args);
  if (args.handle_help(std::cout)) return 0;
  args.reject_unconsumed();

  std::cout << "# Consistency sweep — violation depth vs c under "
               "private-withholding (n=" << miners << ", delta=" << delta
            << ", T=" << rounds << ", seeds=" << seeds << ")\n";

  exp::BenchReporter report("bench_consistency_sweep", io);
  report.set_meta_number("miners", miners);
  report.set_meta_number("delta", static_cast<double>(delta));
  report.set_meta_number("rounds", static_cast<double>(rounds));
  report.set_meta_number("seeds", seeds);

  exp::SweepGrid grid;
  grid.axis("nu", {0.15, 0.3, 0.4});
  grid.axis("multiple", {0.4, 0.7, 1.0, 1.5, 2.5, 5.0, 10.0});

  const auto build = [&](const exp::GridPoint& point) {
    const double nu = point.value("nu");
    const double c = bounds::neat_bound_c(nu) * point.value("multiple");
    sim::ExperimentConfig config;
    config.engine.miner_count = miners;
    config.engine.adversary_fraction = nu;
    config.engine.delta = delta;
    config.engine.p = 1.0 / (c * static_cast<double>(miners) *
                             static_cast<double>(delta));
    config.engine.rounds = rounds;
    config.adversary = sim::AdversaryKind::kPrivateWithhold;
    config.seeds = seeds;
    return config;
  };
  const auto cells = exp::run_sweep(
      grid, build, {.violation_t = violation_t, .threads = io.threads});

  const std::vector<std::string> headers = {
      "nu", "c", "c/bound", "mean violation depth", "max reorg",
      "max divergence", "P[depth > " + std::to_string(violation_t) + "]",
      "chain quality"};
  double section_nu = -1.0;
  for (const exp::SweepCell& cell : cells) {
    const double nu = cell.point.value("nu");
    const double multiple = cell.point.value("multiple");
    const double bound = bounds::neat_bound_c(nu);
    if (nu != section_nu) {
      section_nu = nu;
      report.begin_section("nu = " + format_fixed(nu, 2) +
                               "   (neat bound: c > " +
                               format_fixed(bound, 3) + ")",
                           headers);
    }
    const sim::ExperimentSummary& summary = cell.summary;
    report.add_row({format_fixed(nu, 2), format_fixed(bound * multiple, 3),
                    format_fixed(multiple, 2),
                    format_fixed(summary.violation_depth.mean(), 1),
                    format_fixed(summary.max_reorg_depth.max(), 0),
                    format_fixed(summary.max_divergence.max(), 0),
                    format_fixed(summary.violation_exceeds_t.mean(), 2),
                    format_fixed(summary.chain_quality.mean(), 3)});
  }
  report.finish();
  std::cout
      << "\nreading: the observed violation depth falls monotonically as c "
         "clears the bound.  Above the bound the residual depth is the "
         "ln(T)/ln(mu/nu) random-walk fluctuation Definition 1 tolerates "
         "(consistency holds for any T above it, with the paper's "
         "exponential decay); below the bound the depth and the P[depth>T] "
         "column blow up because convergence opportunities become scarcer "
         "than adversary blocks — condition (10) flips sign.  The linear-"
         "divergence (true inconsistency) regime is driven by the delay-"
         "based attack instead; see bench_attack_region.\n";
  return 0;
}
