// Performance microbenchmarks (google-benchmark): throughput of the
// components the experiment harnesses lean on — per-round simulation cost,
// binomial sampling, suffix-chain solves, frontier inversions, LogProb
// arithmetic.
#include <benchmark/benchmark.h>

#include <memory>

#include "bounds/frontier.hpp"
#include "chains/convergence.hpp"
#include "chains/suffix_chain.hpp"
#include "markov/stationary.hpp"
#include "sim/aggregate.hpp"
#include "sim/engine.hpp"
#include "sim/strategies.hpp"
#include "support/logprob.hpp"
#include "support/rng.hpp"

namespace {

using namespace neatbound;

void BM_LogProbMulAdd(benchmark::State& state) {
  LogProb a = LogProb::from_linear(0.3);
  const LogProb b = LogProb::from_linear(0.7);
  for (auto _ : state) {
    a = a * b + b;
    if (a.log() > 0.0) a = LogProb::from_linear(0.3);  // keep bounded
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_LogProbMulAdd);

void BM_RngBinomialSmallMean(benchmark::State& state) {
  Rng rng(1);
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const double p = 0.5 / static_cast<double>(n);  // mean 0.5
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.binomial(n, p));
  }
}
BENCHMARK(BM_RngBinomialSmallMean)->Arg(100)->Arg(10000)->Arg(1000000);

void BM_SuffixChainStationaryPower(benchmark::State& state) {
  const auto delta = static_cast<std::uint64_t>(state.range(0));
  const chains::SuffixStateSpace space(delta);
  const auto matrix = chains::build_suffix_chain_matrix(space, 0.1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(markov::solve_stationary_power(matrix));
  }
  state.SetLabel(std::to_string(2 * delta + 1) + " states");
}
BENCHMARK(BM_SuffixChainStationaryPower)->Arg(4)->Arg(16)->Arg(64);

void BM_ClosedFormStationary(benchmark::State& state) {
  const auto delta = static_cast<std::uint64_t>(state.range(0));
  const chains::SuffixStateSpace space(delta);
  for (auto _ : state) {
    benchmark::DoNotOptimize(chains::stationary_closed_form_vector(space, 0.1));
  }
}
BENCHMARK(BM_ClosedFormStationary)->Arg(4)->Arg(64);

void BM_FrontierNuMax(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(bounds::nu_max(
        bounds::BoundKind::kZhaoTheorem1Exact, 3.0, 1e5, 1e13));
  }
}
BENCHMARK(BM_FrontierNuMax);

void BM_AggregateEngineRounds(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    sim::AggregateConfig config;
    config.honest_trials = 150;
    config.adversary_trials = 50;
    config.p = 0.001;
    config.delta = 4;
    config.rounds = static_cast<std::uint64_t>(state.range(0));
    config.seed = ++seed;
    benchmark::DoNotOptimize(sim::run_aggregate(config));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AggregateEngineRounds)->Arg(10000)->Arg(100000);

void BM_ExecutionEngineRounds(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    sim::EngineConfig config;
    config.miner_count = 40;
    config.adversary_fraction = 0.25;
    config.p = 0.002;
    config.delta = 3;
    config.rounds = static_cast<std::uint64_t>(state.range(0));
    config.seed = ++seed;
    sim::ExecutionEngine engine(
        config, std::make_unique<sim::PrivateWithholdAdversary>());
    benchmark::DoNotOptimize(engine.run());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ExecutionEngineRounds)->Arg(2000)->Arg(10000);

void BM_ConvergenceCounting(benchmark::State& state) {
  Rng rng(3);
  std::vector<std::uint32_t> counts(100000);
  for (auto& c : counts) {
    c = static_cast<std::uint32_t>(rng.binomial(150, 0.001));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        chains::count_convergence_opportunities(counts, 4));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(counts.size()));
}
BENCHMARK(BM_ConvergenceCounting);

}  // namespace

BENCHMARK_MAIN();
