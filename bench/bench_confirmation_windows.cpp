// Confirmation windows: the operational table a deployment would read —
// for each (ν, c) at laptop-scale Δ, the window length T after which the
// paper's union bound certifies failure probability ≤ 10⁻⁶ / 10⁻⁹ / 10⁻¹²,
// built from bounds::required_confirmation_window (Eqs. 23/26/27/47/49).
//
// Orchestrated: each (ν, c) cell — including its suffix-chain mixing-time
// solve — runs as one job on the shared pool (--threads).
#include <cmath>
#include <iostream>

#include "bounds/confirmation.hpp"
#include "bounds/zhao.hpp"
#include "chains/suffix_chain.hpp"
#include "exp/bench_io.hpp"
#include "exp/grid.hpp"
#include "markov/mixing.hpp"
#include "support/cli.hpp"
#include "support/parallel.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace neatbound;
  CliArgs args(argc, argv);
  const double n = args.get_double("n", 200);
  const double delta = args.get_double("delta", 4);
  const exp::BenchOptions io = exp::parse_bench_options(args);
  if (args.handle_help(std::cout)) return 0;
  args.reject_unconsumed();

  std::cout << "# Confirmation windows (rounds) for failure targets, "
               "n=" << n << ", delta=" << delta << "\n"
            << "# '-' : Theorem 1 margin <= 1, no guarantee at any depth\n";

  exp::BenchReporter report("bench_confirmation_windows", io);
  report.set_meta_number("n", n);
  report.set_meta_number("delta", delta);

  exp::SweepGrid grid;
  grid.axis("nu", {0.1, 0.2, 0.3, 0.4});
  grid.axis("c", {2.0, 4.0, 8.0});
  const auto points = grid.points();

  std::vector<std::vector<std::string>> rows(points.size());
  parallel_for_indexed(points.size(), io.threads, [&](std::size_t i) {
    const double nu = points[i].value("nu");
    const double c = points[i].value("c");
    const auto params = bounds::ProtocolParams::from_c(n, delta, nu, c);
    const double log_margin = bounds::theorem1_margin(params).log();
    std::vector<std::string> row = {
        format_fixed(nu, 2), format_fixed(c, 0),
        format_fixed(c / bounds::neat_bound_c(nu), 2),
        format_fixed(log_margin, 3)};
    if (log_margin <= 0.0) {
      row.insert(row.end(), {"-", "-", "-"});
    } else {
      const chains::SuffixStateSpace space(
          static_cast<std::uint64_t>(delta));
      const auto matrix = chains::build_suffix_chain_matrix(
          space, params.alpha().linear());
      const auto pi = chains::stationary_closed_form_vector(
          space, params.alpha().linear());
      const auto mix = markov::mixing_time(matrix, pi, 1.0 / 8.0, 1 << 18);
      const double tau =
          std::max<double>(1.0, static_cast<double>(mix.time));
      for (const double target : {1e-6, 1e-9, 1e-12}) {
        const auto window =
            bounds::required_confirmation_window(params, tau, target);
        row.push_back(window.has_value() ? format_general(window->rounds, 3)
                                         : "-");
      }
    }
    rows[i] = std::move(row);
  });

  report.begin_section("", {"nu", "c", "c/neat-bound", "ln-margin",
                            "T(1e-6)", "T(1e-9)", "T(1e-12)"});
  for (const auto& row : rows) report.add_row(row);
  report.finish();
  std::cout << "\nreading: windows shrink rapidly as the margin grows "
               "(higher c, lower nu) and scale linearly in ln(1/target) — "
               "the exp(-Omega(T)) of Definition 1 made concrete.  The "
               "72-tau constant of the Markov Chernoff bound makes these "
               "conservative by 2-3 orders of magnitude versus simulation.\n";
  return 0;
}
