// Chain growth and chain quality (the §II properties the paper defers to
// future work), measured by the execution engine and compared with the
// standard heuristics g ≈ α/(1+Δα) and q ≈ 1 − ν/μ, plus the selfish-
// mining degradation of quality.
#include <cmath>
#include <iostream>
#include <memory>

#include "bounds/growth_quality.hpp"
#include "sim/engine.hpp"
#include "sim/runner.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace neatbound;
  CliArgs args(argc, argv);
  const auto miners = static_cast<std::uint32_t>(args.get_uint("miners", 40));
  const std::uint64_t rounds = args.get_uint("rounds", 30000);
  const auto seeds = static_cast<std::uint32_t>(args.get_uint("seeds", 5));
  args.reject_unconsumed();

  std::cout << "# Chain growth under max-delay delivery vs g ~ "
               "alpha/(1+delta*alpha)\n";
  TablePrinter growth({"delta", "p", "alpha", "g heuristic", "g simulated",
                       "ratio"});
  for (const std::uint64_t delta : {1ULL, 2ULL, 4ULL, 8ULL}) {
    for (const double p : {0.001, 0.004}) {
      sim::ExperimentConfig config;
      config.engine.miner_count = miners;
      config.engine.adversary_fraction = 0.0;
      config.engine.delta = delta;
      config.engine.p = p;
      config.engine.rounds = rounds;
      config.adversary = sim::AdversaryKind::kMaxDelay;
      config.seeds = seeds;
      const auto summary = sim::run_experiment(config, 8);
      const double alpha =
          1.0 - std::pow(1.0 - p, static_cast<double>(miners));
      const double heuristic =
          alpha / (1.0 + static_cast<double>(delta) * alpha);
      growth.add_row({std::to_string(delta), format_general(p, 3),
                      format_fixed(alpha, 4), format_fixed(heuristic, 5),
                      format_fixed(summary.chain_growth.mean(), 5),
                      format_fixed(summary.chain_growth.mean() / heuristic,
                                   3)});
    }
  }
  growth.print(std::cout);

  std::cout << "\n# Chain quality vs adversary strategy (q heuristic: "
               "1 - nu/mu under honest-ish behaviour)\n";
  TablePrinter quality({"strategy", "nu", "q heuristic", "q simulated",
                        "adv blocks in chain"});
  for (const auto kind : {sim::AdversaryKind::kPrivateWithhold,
                          sim::AdversaryKind::kSelfishMining}) {
    for (const double nu : {0.1, 0.25, 0.4}) {
      sim::ExperimentConfig config;
      config.engine.miner_count = miners;
      config.engine.adversary_fraction = nu;
      config.engine.delta = 2;
      config.engine.p = 0.002;
      config.engine.rounds = rounds;
      config.adversary = kind;
      config.seeds = seeds;
      const auto summary = sim::run_experiment(config, 8);
      const double heuristic = 1.0 - nu / (1.0 - nu);
      quality.add_row({sim::adversary_kind_name(kind), format_fixed(nu, 2),
                       format_fixed(heuristic, 3),
                       format_fixed(summary.chain_quality.mean(), 3),
                       format_fixed(summary.chain_quality.count() > 0
                                        ? (1.0 - summary.chain_quality.mean())
                                        : 0.0,
                                    3)});
    }
  }
  quality.print(std::cout);
  std::cout << "\nreading: selfish mining pushes quality toward (and below) "
               "the 1 - nu/mu line, the classical chain-quality attack "
               "bound; withholding costs less quality because failed forks "
               "stay private.\n";

  std::cout << "\n# Block-DAG shape: honest work wasted on forks vs the "
               "1 - g/(blocks per round) identity\n";
  TablePrinter dag({"delta", "p", "orphan rate", "predicted", "fork heights",
                    "max width"});
  for (const std::uint64_t delta : {1ULL, 4ULL, 8ULL}) {
    for (const double p : {0.001, 0.004}) {
      sim::EngineConfig config;
      config.miner_count = miners;
      config.adversary_fraction = 0.0;
      config.delta = delta;
      config.p = p;
      config.rounds = rounds;
      config.seed = 99;
      sim::ExecutionEngine engine(
          config, std::make_unique<sim::MaxDelayAdversary>(delta));
      const auto result = engine.run();
      const auto metrics =
          sim::measure_dag(engine.store(), engine.best_honest_tip());
      const double blocks_per_round =
          static_cast<double>(result.honest_blocks_total) /
          static_cast<double>(rounds);
      const double predicted =
          1.0 - result.chain.growth_per_round / blocks_per_round;
      dag.add_row({std::to_string(delta), format_general(p, 3),
                   format_fixed(metrics.orphan_rate, 4),
                   format_fixed(predicted, 4),
                   std::to_string(metrics.fork_heights),
                   std::to_string(metrics.max_width)});
    }
  }
  dag.print(std::cout);
  return 0;
}
