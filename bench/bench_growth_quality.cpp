// Chain growth and chain quality (the §II properties the paper defers to
// future work), measured by the execution engine and compared with the
// standard heuristics g ≈ α/(1+Δα) and q ≈ 1 − ν/μ, plus the selfish-
// mining degradation of quality.
//
// Orchestrated: the growth and quality sweeps run their (grid × seed)
// engine jobs on one work pool; the block-DAG section parallelizes its
// single-seed engine runs over grid cells (--threads).
#include <cmath>
#include <iostream>
#include <memory>

#include "bounds/growth_quality.hpp"
#include "exp/bench_io.hpp"
#include "exp/orchestrator.hpp"
#include "sim/engine.hpp"
#include "support/cli.hpp"
#include "support/parallel.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace neatbound;
  CliArgs args(argc, argv);
  const auto miners = static_cast<std::uint32_t>(args.get_uint("miners", 40));
  const std::uint64_t rounds = args.get_uint("rounds", 30000);
  const auto seeds = static_cast<std::uint32_t>(args.get_uint("seeds", 5));
  const exp::BenchOptions io = exp::parse_bench_options(args);
  if (args.handle_help(std::cout)) return 0;
  args.reject_unconsumed();

  exp::BenchReporter report("bench_growth_quality", io);
  report.set_meta_number("miners", miners);
  report.set_meta_number("rounds", static_cast<double>(rounds));
  report.set_meta_number("seeds", seeds);

  std::cout << "# Chain growth / quality / block-DAG shape "
               "(n=" << miners << ", T=" << rounds << ", seeds=" << seeds
            << ")\n";
  {
    exp::SweepGrid grid;
    grid.axis("delta", {1, 2, 4, 8});
    grid.axis("p", {0.001, 0.004});
    const auto build = [&](const exp::GridPoint& point) {
      sim::ExperimentConfig config;
      config.engine.miner_count = miners;
      config.engine.adversary_fraction = 0.0;
      config.engine.delta = static_cast<std::uint64_t>(point.value("delta"));
      config.engine.p = point.value("p");
      config.engine.rounds = rounds;
      config.adversary = sim::AdversaryKind::kMaxDelay;
      config.seeds = seeds;
      return config;
    };
    const auto cells =
        exp::run_sweep(grid, build, {.violation_t = 8, .threads = io.threads});
    report.begin_section(
        "growth — max-delay delivery vs g ~ alpha/(1+delta*alpha)",
        {"delta", "p", "alpha", "g heuristic", "g simulated", "ratio"});
    for (const exp::SweepCell& cell : cells) {
      const auto delta = static_cast<std::uint64_t>(cell.point.value("delta"));
      const double p = cell.point.value("p");
      const double alpha =
          1.0 - std::pow(1.0 - p, static_cast<double>(miners));
      const double heuristic =
          alpha / (1.0 + static_cast<double>(delta) * alpha);
      report.add_row({std::to_string(delta), format_general(p, 3),
                      format_fixed(alpha, 4), format_fixed(heuristic, 5),
                      format_fixed(cell.summary.chain_growth.mean(), 5),
                      format_fixed(cell.summary.chain_growth.mean() / heuristic,
                                   3)});
    }
  }

  {
    // Categorical axis: index into the strategy list.
    const sim::AdversaryKind kinds[] = {sim::AdversaryKind::kPrivateWithhold,
                                        sim::AdversaryKind::kSelfishMining};
    exp::SweepGrid grid;
    grid.axis("strategy", {0, 1});
    grid.axis("nu", {0.1, 0.25, 0.4});
    const auto build = [&](const exp::GridPoint& point) {
      sim::ExperimentConfig config;
      config.engine.miner_count = miners;
      config.engine.adversary_fraction = point.value("nu");
      config.engine.delta = 2;
      config.engine.p = 0.002;
      config.engine.rounds = rounds;
      config.adversary =
          kinds[static_cast<std::size_t>(point.value("strategy"))];
      config.seeds = seeds;
      return config;
    };
    const auto cells =
        exp::run_sweep(grid, build, {.violation_t = 8, .threads = io.threads});
    report.begin_section(
        "quality — vs adversary strategy (q heuristic: 1 - nu/mu under "
        "honest-ish behaviour)",
        {"strategy", "nu", "q heuristic", "q simulated",
         "adv blocks in chain"});
    for (const exp::SweepCell& cell : cells) {
      const double nu = cell.point.value("nu");
      const double heuristic = 1.0 - nu / (1.0 - nu);
      report.add_row(
          {sim::adversary_kind_name(cell.config.adversary),
           format_fixed(nu, 2), format_fixed(heuristic, 3),
           format_fixed(cell.summary.chain_quality.mean(), 3),
           format_fixed(cell.summary.chain_quality.count() > 0
                            ? (1.0 - cell.summary.chain_quality.mean())
                            : 0.0,
                        3)});
    }
  }

  {
    exp::SweepGrid grid;
    grid.axis("delta", {1, 4, 8});
    grid.axis("p", {0.001, 0.004});
    const auto points = grid.points();
    std::vector<std::vector<std::string>> rows(points.size());
    parallel_for_indexed(points.size(), io.threads, [&](std::size_t i) {
      const auto delta = static_cast<std::uint64_t>(points[i].value("delta"));
      const double p = points[i].value("p");
      sim::EngineConfig config;
      config.miner_count = miners;
      config.adversary_fraction = 0.0;
      config.delta = delta;
      config.p = p;
      config.rounds = rounds;
      config.seed = 99;
      sim::ExecutionEngine engine(
          config, std::make_unique<sim::MaxDelayAdversary>(delta));
      const auto result = engine.run();
      const auto metrics =
          sim::measure_dag(engine.store(), engine.best_honest_tip());
      const double blocks_per_round =
          static_cast<double>(result.honest_blocks_total) /
          static_cast<double>(rounds);
      const double predicted =
          1.0 - result.chain.growth_per_round / blocks_per_round;
      rows[i] = {std::to_string(delta), format_general(p, 3),
                 format_fixed(metrics.orphan_rate, 4),
                 format_fixed(predicted, 4),
                 std::to_string(metrics.fork_heights),
                 std::to_string(metrics.max_width)};
    });
    report.begin_section(
        "block-dag — honest work wasted on forks vs the 1 - g/(blocks per "
        "round) identity",
        {"delta", "p", "orphan rate", "predicted", "fork heights",
         "max width"});
    for (const auto& row : rows) report.add_row(row);
  }

  report.finish();
  std::cout << "\nreading: selfish mining pushes quality toward (and below) "
               "the 1 - nu/mu line, the classical chain-quality attack "
               "bound; withholding costs less quality because failed forks "
               "stay private.\n";
  return 0;
}
