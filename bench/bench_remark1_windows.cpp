// Remark 1 reproduction: the ν-windows (Inequality 12) and bound factors
// (Inequality 13) for Δ = 10¹³, including the paper's two exponent pairs
//   (δ₁, δ₂) = (1/6, 1/2): ν ∈ [~1e-63, 1/2 − ~1e-7], factor ≈ 1 + 5e-5,
//   (δ₁, δ₂) = (1/8, 2/3): ν ∈ [~1e-18, 1/2 − ~1e-9], factor ≈ 1 + 2e-3,
// plus a sweep over further pairs showing the window/factor trade-off.
#include <cmath>
#include <iostream>

#include "analysis/tables.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace neatbound;
  CliArgs args(argc, argv);
  const double delta = args.get_double("delta", 1e13);
  if (args.handle_help(std::cout)) return 0;
  args.reject_unconsumed();

  std::cout << "# Remark 1 — nu windows and c-threshold factors at delta="
            << format_general(delta) << "\n"
            << "# paper values: row 1 -> [1e-63, 0.5-1e-7], 1+5e-5;"
               " row 2 -> [1e-18, 0.5-1e-9], 1+2e-3\n";

  TablePrinter table({"delta1", "delta2", "log10(nu_lo)", "0.5 - nu_hi",
                      "factor - 1", "c_thresh(nu=1/4)", "2mu/ln(mu/nu)",
                      "overhead"});
  for (const auto& row : analysis::remark1_rows(delta)) {
    table.add_row({format_fixed(row.d1, 4), format_fixed(row.d2, 4),
                   format_fixed(row.window.log10_nu_lo, 2),
                   format_sci(row.window.half_minus_hi, 2),
                   format_sci(row.window.factor_minus_one, 2),
                   format_fixed(row.c_threshold, 9),
                   format_fixed(row.c_neat, 9),
                   format_sci(row.c_threshold / row.c_neat - 1.0, 2)});
  }
  table.print(std::cout);
  std::cout << "\nreading: over each window, consistency needs c only "
               "(factor-1) above the neat bound 2mu/ln(mu/nu).\n";
  return 0;
}
