// Eq. (26)/(44) validation: E[C(t₀, t₀+T−1)] = T·ᾱ^{2Δ}·α₁.
//
// The aggregate engine samples per-round honest block counts and counts
// convergence-opportunity patterns (H N^{≥Δ} H₁ N^Δ); across seeds the
// mean must match the analytic expectation.  Swept over (Δ, c, ν).
#include <iostream>

#include "analysis/validation.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace neatbound;
  CliArgs args(argc, argv);
  const double n = args.get_double("n", 200);
  const std::uint64_t rounds = args.get_uint("rounds", 200000);
  const auto seeds = static_cast<std::uint32_t>(args.get_uint("seeds", 10));
  args.reject_unconsumed();

  std::cout << "# Eq. (26)/(44) — convergence-opportunity rate: simulated vs "
               "T*alpha_bar^(2*delta)*alpha1\n"
            << "# n=" << n << " rounds=" << rounds << " seeds=" << seeds
            << '\n';

  TablePrinter table({"delta", "c", "nu", "analytic rate", "expected count",
                      "simulated mean", "stderr", "ratio", "in 95% CI"});
  bool all_in_ci = true;
  for (const double delta : {2.0, 4.0, 8.0}) {
    for (const double c : {2.0, 4.0, 8.0}) {
      for (const double nu : {0.1, 0.3}) {
        const auto row = analysis::validate_convergence_rate(
            n, delta, c, nu, rounds, seeds);
        const bool in_ci = row.ci.contains(row.expected_count);
        all_in_ci &= in_ci;
        table.add_row({format_fixed(delta, 0), format_fixed(c, 0),
                       format_fixed(nu, 2), format_sci(row.analytic_rate, 3),
                       format_fixed(row.expected_count, 1),
                       format_fixed(row.simulated_mean, 1),
                       format_fixed(row.simulated_stderr, 1),
                       format_fixed(row.ratio, 4), in_ci ? "yes" : "NO"});
      }
    }
  }
  table.print(std::cout);
  std::cout << "\ncheck: analytic expectation inside the 95% CI of the "
               "simulated mean on every row: "
            << (all_in_ci ? "yes" : "NO (1-2 marginal rows can flip by "
                                    "chance at 95%)")
            << '\n';
  return 0;
}
