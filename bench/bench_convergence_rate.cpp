// Eq. (26)/(44) validation: E[C(t₀, t₀+T−1)] = T·ᾱ^{2Δ}·α₁.
//
// The aggregate engine samples per-round honest block counts and counts
// convergence-opportunity patterns (H N^{≥Δ} H₁ N^Δ); across seeds the
// mean must match the analytic expectation.  Swept over (Δ, c, ν).
//
// Orchestrated: each (Δ, c, ν) validation cell runs as one job on the
// shared pool (--threads); rows are emitted in grid order.
#include <iostream>

#include "analysis/validation.hpp"
#include "exp/bench_io.hpp"
#include "exp/grid.hpp"
#include "support/cli.hpp"
#include "support/parallel.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace neatbound;
  CliArgs args(argc, argv);
  const double n = args.get_double("n", 200);
  const std::uint64_t rounds = args.get_uint("rounds", 200000);
  const auto seeds = static_cast<std::uint32_t>(args.get_uint("seeds", 10));
  const exp::BenchOptions io = exp::parse_bench_options(args);
  if (args.handle_help(std::cout)) return 0;
  args.reject_unconsumed();

  std::cout << "# Eq. (26)/(44) — convergence-opportunity rate: simulated vs "
               "T*alpha_bar^(2*delta)*alpha1\n"
            << "# n=" << n << " rounds=" << rounds << " seeds=" << seeds
            << '\n';

  exp::BenchReporter report("bench_convergence_rate", io);
  report.set_meta_number("n", n);
  report.set_meta_number("rounds", static_cast<double>(rounds));
  report.set_meta_number("seeds", seeds);

  exp::SweepGrid grid;
  grid.axis("delta", {2.0, 4.0, 8.0});
  grid.axis("c", {2.0, 4.0, 8.0});
  grid.axis("nu", {0.1, 0.3});
  const auto points = grid.points();

  std::vector<analysis::ConvergenceRateRow> rows(points.size());
  parallel_for_indexed(points.size(), io.threads, [&](std::size_t i) {
    rows[i] = analysis::validate_convergence_rate(
        n, points[i].value("delta"), points[i].value("c"),
        points[i].value("nu"), rounds, seeds);
  });

  report.begin_section("", {"delta", "c", "nu", "analytic rate",
                            "expected count", "simulated mean", "stderr",
                            "ratio", "in 95% CI"});
  bool all_in_ci = true;
  for (const auto& row : rows) {
    const bool in_ci = row.ci.contains(row.expected_count);
    all_in_ci &= in_ci;
    report.add_row({format_fixed(row.delta, 0), format_fixed(row.c, 0),
                    format_fixed(row.nu, 2), format_sci(row.analytic_rate, 3),
                    format_fixed(row.expected_count, 1),
                    format_fixed(row.simulated_mean, 1),
                    format_fixed(row.simulated_stderr, 1),
                    format_fixed(row.ratio, 4), in_ci ? "yes" : "NO"});
  }
  report.set_meta("all_in_ci", all_in_ci ? "yes" : "no");
  report.finish();
  std::cout << "\ncheck: analytic expectation inside the 95% CI of the "
               "simulated mean on every row: "
            << (all_in_ci ? "yes" : "NO (1-2 marginal rows can flip by "
                                    "chance at 95%)")
            << '\n';
  return 0;
}
