// Ablation: how much adversary tolerance each weakening step costs.
//
//   Theorem 1 (exact Markov condition 10)
//     → Theorem 2 (closed form 11, optimized ε)
//       → neat asymptote 2μ/ln(μ/ν)
// compared against both Kiffer renewal variants, across Δ — quantifying
// the claims in the paper's "Novelty of our Theorem 1/2" discussion.
#include <iostream>

#include "bounds/frontier.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace neatbound;
  using bounds::BoundKind;
  CliArgs args(argc, argv);
  const double n = args.get_double("n", 1e5);
  args.reject_unconsumed();

  std::cout << "# Tightness ablation — nu_max by bound, across delta "
               "(n=" << format_general(n) << ")\n";
  TablePrinter table({"delta", "c", "thm1 exact", "thm2", "neat",
                      "kiffer_corr", "thm2/thm1", "neat vs thm2"});
  for (const double delta : {4.0, 64.0, 1e4, 1e13}) {
    for (const double c : {1.0, 3.0, 10.0}) {
      const double t1 =
          bounds::nu_max(BoundKind::kZhaoTheorem1Exact, c, n, delta);
      const double t2 = bounds::nu_max(BoundKind::kZhaoTheorem2, c, n, delta);
      const double neat = bounds::nu_max(BoundKind::kZhaoNeat, c, n, delta);
      const double kc =
          bounds::nu_max(BoundKind::kKifferCorrected, c, n, delta);
      table.add_row({format_general(delta, 3), format_fixed(c, 1),
                     format_general(t1, 6), format_general(t2, 6),
                     format_general(neat, 6), format_general(kc, 6),
                     t1 > 0 ? format_fixed(t2 / t1, 4) : "-",
                     t2 > 0 ? format_fixed(neat / t2, 4) : "-"});
    }
  }
  table.print(std::cout);
  std::cout
      << "\nreading: at delta=1e13 the three Zhao frontiers collapse "
         "(thm2/thm1 = 1), i.e. the neat bound gives away nothing at paper "
         "scale;\nat small delta the closed form (thm2) pays a visible "
         "price versus the exact Markov condition, and the bare asymptote "
         "can even exceed thm1 — it is only valid once delta is large, "
         "which is exactly what Theorem 2's 1/delta terms encode.\nThe "
         "renewal-style frontier saturates near mu/2 for large c: counting "
         "one opportunity per 2(delta+ell) rounds undercounts by ~2x, "
         "which is the looseness the paper's Markov-chain analysis "
         "removes.\n";
  return 0;
}
