// Ablation: how much adversary tolerance each weakening step costs.
//
//   Theorem 1 (exact Markov condition 10)
//     → Theorem 2 (closed form 11, optimized ε)
//       → neat asymptote 2μ/ln(μ/ν)
// compared against both Kiffer renewal variants, across Δ — quantifying
// the claims in the paper's "Novelty of our Theorem 1/2" discussion.
//
// Orchestrated: each (Δ, c) cell's frontier solves run as one pool job
// (--threads); rows are emitted in grid order.
#include <iostream>

#include "bounds/frontier.hpp"
#include "exp/bench_io.hpp"
#include "exp/grid.hpp"
#include "support/cli.hpp"
#include "support/parallel.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace neatbound;
  using bounds::BoundKind;
  CliArgs args(argc, argv);
  const double n = args.get_double("n", 1e5);
  const exp::BenchOptions io = exp::parse_bench_options(args);
  if (args.handle_help(std::cout)) return 0;
  args.reject_unconsumed();

  std::cout << "# Tightness ablation — nu_max by bound, across delta "
               "(n=" << format_general(n) << ")\n";

  exp::BenchReporter report("bench_tightness_ablation", io);
  report.set_meta_number("n", n);

  exp::SweepGrid grid;
  grid.axis("delta", {4.0, 64.0, 1e4, 1e13});
  grid.axis("c", {1.0, 3.0, 10.0});
  const auto points = grid.points();

  std::vector<std::vector<std::string>> rows(points.size());
  parallel_for_indexed(points.size(), io.threads, [&](std::size_t i) {
    const double delta = points[i].value("delta");
    const double c = points[i].value("c");
    const double t1 =
        bounds::nu_max(BoundKind::kZhaoTheorem1Exact, c, n, delta);
    const double t2 = bounds::nu_max(BoundKind::kZhaoTheorem2, c, n, delta);
    const double neat = bounds::nu_max(BoundKind::kZhaoNeat, c, n, delta);
    const double kc =
        bounds::nu_max(BoundKind::kKifferCorrected, c, n, delta);
    rows[i] = {format_general(delta, 3), format_fixed(c, 1),
               format_general(t1, 6), format_general(t2, 6),
               format_general(neat, 6), format_general(kc, 6),
               t1 > 0 ? format_fixed(t2 / t1, 4) : "-",
               t2 > 0 ? format_fixed(neat / t2, 4) : "-"};
  });

  report.begin_section("", {"delta", "c", "thm1 exact", "thm2", "neat",
                            "kiffer_corr", "thm2/thm1", "neat vs thm2"});
  for (const auto& row : rows) report.add_row(row);
  report.finish();
  std::cout
      << "\nreading: at delta=1e13 the three Zhao frontiers collapse "
         "(thm2/thm1 = 1), i.e. the neat bound gives away nothing at paper "
         "scale;\nat small delta the closed form (thm2) pays a visible "
         "price versus the exact Markov condition, and the bare asymptote "
         "can even exceed thm1 — it is only valid once delta is large, "
         "which is exactly what Theorem 2's 1/delta terms encode.\nThe "
         "renewal-style frontier saturates near mu/2 for large c: counting "
         "one opportunity per 2(delta+ell) rounds undercounts by ~2x, "
         "which is the looseness the paper's Markov-chain analysis "
         "removes.\n";
  return 0;
}
