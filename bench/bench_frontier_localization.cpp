// Adaptive reproduction of the Fig. 1 boundary: localize the empirical
// consistency-violation frontier in the (ν, c/bound) plane and compare
// it against the analytic frontiers in bounds/frontier.
//
// Instead of burning a fixed seed budget on a dense multiple-axis grid,
// the run (1) sweeps a coarse grid with confidence-interval-driven seed
// allocation (cells whose P[violation depth > T] estimate is already
// tight stop early), then (2) bisects each ν-line's bracketing pair of
// coarse points — evaluating midpoints with the same sequential-stopping
// rule — until the crossing multiple is pinned to --tolerance.  The JSON
// meta reports both the engine runs actually spent (engine_runs) and the
// cost of the uniform dense grid reaching the same resolution
// (dense_equivalent_runs); the saving is typically an order of
// magnitude.
#include <cmath>
#include <iostream>

#include "bounds/frontier.hpp"
#include "bounds/zhao.hpp"
#include "exp/adaptive.hpp"
#include "exp/bench_io.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace neatbound;
  CliArgs args(argc, argv);
  const auto miners = static_cast<std::uint32_t>(args.get_uint("miners", 40));
  const std::uint64_t delta = args.get_uint("delta", 3);
  const std::uint64_t rounds = args.get_uint("rounds", 12000);
  const std::uint64_t violation_t = args.get_uint("violation-t", 8);
  exp::AdaptiveOptions adaptive;
  adaptive.min_seeds = static_cast<std::uint32_t>(
      args.get_uint("min-seeds", 4, "wave-0 seed budget per cell"));
  adaptive.batch = static_cast<std::uint32_t>(
      args.get_uint("batch", 4, "seeds added per refill wave"));
  adaptive.max_seeds = static_cast<std::uint32_t>(
      args.get_uint("max-seeds", 48, "hard per-cell seed cap"));
  adaptive.half_width = args.get_double(
      "half-width", 0.08, "Wilson half-width target on P[depth > T]");
  adaptive.confidence =
      args.get_double("confidence", 0.95, "stopping interval level");
  exp::FrontierOptions frontier;
  frontier.axis = "multiple";
  frontier.threshold = args.get_double(
      "threshold", 0.5, "P[depth > T] level that defines the frontier");
  frontier.tolerance = args.get_double(
      "tolerance", 0.05, "bracket width to localize the crossing to");
  const exp::BenchOptions io = exp::parse_bench_options(args);
  if (args.handle_help(std::cout)) return 0;
  args.reject_unconsumed();

  std::cout << "# Frontier localization — empirical violation frontier vs "
               "the analytic bounds (n=" << miners << ", delta=" << delta
            << ", T=" << rounds << ", threshold=" << frontier.threshold
            << ", tolerance=" << frontier.tolerance << ")\n";

  exp::BenchReporter report("bench_frontier_localization", io);
  report.set_meta_number("miners", miners);
  report.set_meta_number("delta", static_cast<double>(delta));
  report.set_meta_number("rounds", static_cast<double>(rounds));
  report.set_meta_number("threshold", frontier.threshold);
  report.set_meta_number("tolerance", frontier.tolerance);
  report.set_meta_number("max_seeds", adaptive.max_seeds);

  exp::SweepGrid grid;
  grid.axis("nu", {0.15, 0.3, 0.4});
  grid.axis("multiple", {0.4, 0.7, 1.0, 1.5, 2.5});

  const auto build = [&](const exp::GridPoint& point) {
    const double nu = point.value("nu");
    const double c = bounds::neat_bound_c(nu) * point.value("multiple");
    sim::ExperimentConfig config;
    config.engine.miner_count = miners;
    config.engine.adversary_fraction = nu;
    config.engine.delta = delta;
    config.engine.p = 1.0 / (c * static_cast<double>(miners) *
                             static_cast<double>(delta));
    config.engine.rounds = rounds;
    config.adversary = sim::AdversaryKind::kPrivateWithhold;
    config.seeds = adaptive.max_seeds;
    return config;
  };

  const exp::FrontierResult result = exp::localize_frontier(
      grid, build, {.violation_t = violation_t, .threads = io.threads},
      adaptive, frontier);

  report.begin_section(
      "coarse sweep (adaptive seed allocation)",
      {"nu", "multiple", "c", "P[depth > " + std::to_string(violation_t) +
                                  "]",
       "ci low", "ci high", "seeds used", "stopped early"});
  for (const exp::AdaptiveCell& cell : result.coarse.cells) {
    const double nu = cell.cell.point.value("nu");
    const double multiple = cell.cell.point.value("multiple");
    const double phat = static_cast<double>(cell.violations) /
                        static_cast<double>(cell.seeds_used);
    report.add_row({format_fixed(nu, 2), format_fixed(multiple, 2),
                    format_fixed(bounds::neat_bound_c(nu) * multiple, 3),
                    format_fixed(phat, 3), format_fixed(cell.ci.lo, 3),
                    format_fixed(cell.ci.hi, 3),
                    format_fixed(static_cast<double>(cell.seeds_used), 0),
                    cell.stopped_early ? "yes" : "no"});
  }

  report.begin_section(
      "localized frontier (crossing multiple per nu)",
      {"nu", "bracket lo", "bracket hi", "multiple*", "empirical c*",
       "neat bound c", "PSS c_min", "refine runs"});
  for (const exp::FrontierRow& row : result.rows) {
    const double nu = row.anchor.value("nu");
    const double bound = bounds::neat_bound_c(nu);
    if (!row.bracketed) {
      report.add_row({format_fixed(nu, 2), "-", "-", "-", "-",
                      format_fixed(bound, 3),
                      format_fixed(bounds::c_min(
                                       bounds::BoundKind::kPssConsistency, nu,
                                       miners, static_cast<double>(delta)),
                                   3),
                      "0"});
      continue;
    }
    const double mid = 0.5 * (row.lo + row.hi);
    report.add_row(
        {format_fixed(nu, 2), format_fixed(row.lo, 3),
         format_fixed(row.hi, 3), format_fixed(mid, 3),
         format_fixed(bound * mid, 3), format_fixed(bound, 3),
         format_fixed(bounds::c_min(bounds::BoundKind::kPssConsistency, nu,
                                    miners, static_cast<double>(delta)),
                      3),
         format_fixed(static_cast<double>(row.refine_runs), 0)});
  }

  report.set_meta_number("engine_runs",
                         static_cast<double>(result.engine_runs));
  report.set_meta_number("dense_equivalent_runs",
                         static_cast<double>(result.dense_equivalent_runs));
  report.finish();

  const double saving =
      result.engine_runs == 0
          ? 0.0
          : static_cast<double>(result.dense_equivalent_runs) /
                static_cast<double>(result.engine_runs);
  std::cout << "\nreading: each nu line's crossing multiple* is where the "
               "empirical violation probability passes "
            << frontier.threshold << "; the neat bound predicts the "
               "frontier at multiple = 1 asymptotically, and the engine-"
               "scale crossing sits near it from below (finite n and "
               "Delta soften the transition — see docs/reproducing.md).  "
               "Cost: "
            << result.engine_runs << " engine runs vs "
            << result.dense_equivalent_runs
            << " for the dense grid at the same resolution ("
            << format_fixed(saving, 1) << "x fewer).\n";
  return 0;
}
