// PSS Remark 8.5 attack region (Figure 1's red line), validated end to
// end: the balance-attack adversary splits the honest miners and keeps
// two chains level; the attack sustains divergence exactly when
// 1/c > 1/ν − 1/μ.  We scan ν at fixed c and report the divergence the
// attack sustains, alongside the red-line threshold.
//
// Orchestrated: all (c, ν, seed) engine runs share one work pool
// (--threads); summaries are bit-identical to the serial path.
#include <iostream>

#include "bounds/pss.hpp"
#include "exp/bench_io.hpp"
#include "exp/orchestrator.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace neatbound;
  CliArgs args(argc, argv);
  const auto miners = static_cast<std::uint32_t>(args.get_uint("miners", 40));
  const std::uint64_t delta = args.get_uint("delta", 4);
  const std::uint64_t rounds = args.get_uint("rounds", 8000);
  const auto seeds = static_cast<std::uint32_t>(args.get_uint("seeds", 5));
  const exp::BenchOptions io = exp::parse_bench_options(args);
  if (args.handle_help(std::cout)) return 0;
  args.reject_unconsumed();

  std::cout << "# PSS attack region — balance attack vs the red line "
               "(n=" << miners << ", delta=" << delta << ", T=" << rounds
            << ", seeds=" << seeds << ")\n";

  exp::BenchReporter report("bench_attack_region", io);
  report.set_meta_number("miners", miners);
  report.set_meta_number("delta", static_cast<double>(delta));
  report.set_meta_number("rounds", static_cast<double>(rounds));
  report.set_meta_number("seeds", seeds);

  exp::SweepGrid grid;
  grid.axis("c", {0.6, 1.0, 2.0});
  grid.axis("nu", {0.10, 0.20, 0.30, 0.40, 0.48});

  const auto build = [&](const exp::GridPoint& point) {
    sim::ExperimentConfig config;
    config.engine.miner_count = miners;
    config.engine.adversary_fraction = point.value("nu");
    config.engine.delta = delta;
    config.engine.p = 1.0 / (point.value("c") * static_cast<double>(miners) *
                             static_cast<double>(delta));
    config.engine.rounds = rounds;
    config.adversary = sim::AdversaryKind::kBalanceAttack;
    config.seeds = seeds;
    return config;
  };
  const auto cells =
      exp::run_sweep(grid, build, {.violation_t = 8, .threads = io.threads});

  const std::vector<std::string> headers = {"nu", "predicted",
                                            "mean max divergence",
                                            "divergence/rounds x1e3",
                                            "disagreement frac"};
  double section_c = -1.0;
  for (const exp::SweepCell& cell : cells) {
    const double c = cell.point.value("c");
    const double nu = cell.point.value("nu");
    if (c != section_c) {
      section_c = c;
      const double threshold = bounds::pss_attack_nu_threshold(c);
      report.begin_section("c = " + format_fixed(c, 2) +
                               "   (red line: attack predicted for nu > " +
                               format_fixed(threshold, 3) + ")",
                           headers);
    }
    const sim::ExperimentSummary& summary = cell.summary;
    const bool predicted = bounds::pss_attack_applies(nu, c);
    report.add_row(
        {format_fixed(nu, 2), predicted ? "attack" : "safe",
         format_fixed(summary.max_divergence.mean(), 1),
         format_fixed(summary.max_divergence.mean() /
                          static_cast<double>(rounds) * 1000.0,
                      2),
         format_fixed(summary.disagreement_rounds.mean() /
                          static_cast<double>(rounds),
                      3)});
  }
  report.finish();
  std::cout << "\nreading: sustained (rounds-proportional) divergence "
               "appears above the red-line threshold and vanishes below "
               "it.\n";
  return 0;
}
