// Eq. (37) validation: the closed-form stationary distribution of the
// suffix chain C_F versus (i) power iteration, (ii) damped fixed-point
// iteration, and (iii) empirical visit frequencies of a long random walk,
// swept over Δ and α.  Also verifies the paper's ergodicity assertion and
// that Σπ = 1 (Eq. 36e).
#include <iostream>

#include "analysis/validation.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace neatbound;
  CliArgs args(argc, argv);
  const std::uint64_t walk_steps = args.get_uint("walk-steps", 400000);
  if (args.handle_help(std::cout)) return 0;
  args.reject_unconsumed();

  std::cout << "# Eq. (37) — stationary distribution of C_F: closed form vs "
               "numeric vs random walk\n";

  TablePrinter table({"delta", "alpha", "states", "ergodic", "sum(pi)-1",
                      "max|err| power", "max|err| fixed", "max|err| walk"});
  bool all_good = true;
  for (const std::uint64_t delta : {1ULL, 2ULL, 3ULL, 4ULL, 8ULL, 16ULL,
                                    32ULL, 64ULL}) {
    for (const double alpha : {0.02, 0.1, 0.3, 0.6}) {
      const auto row =
          analysis::compare_stationary(delta, alpha, walk_steps);
      table.add_row({std::to_string(delta), format_fixed(alpha, 2),
                     std::to_string(2 * delta + 1),
                     row.ergodic ? "yes" : "NO",
                     format_sci(row.closed_form_sum - 1.0, 1),
                     format_sci(row.max_abs_err_power, 1),
                     format_sci(row.max_abs_err_fixed, 1),
                     format_sci(row.max_abs_err_walk, 1)});
      all_good &= row.ergodic && row.max_abs_err_power < 1e-8 &&
                  row.max_abs_err_fixed < 1e-8;
    }
  }
  table.print(std::cout);
  std::cout << "\ncheck: closed form matches both solvers to <1e-8 on every "
               "row: "
            << (all_good ? "yes" : "NO") << '\n';
  return all_good ? 0 : 1;
}
