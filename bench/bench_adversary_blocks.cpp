// Eq. (27)/(49) validation: A(t₀, t₀+T−1) ~ Binomial(Tνn, p) with mean
// Tpνn, and the Arratia–Gordon upper-tail bound (the paper's Eq. 49)
// evaluated alongside the empirical deviation.
//
// Orchestrated: each (Δ, c, ν) validation cell (its seeds included) runs
// as one job on the shared pool (--threads); rows are emitted in grid
// order, so output is identical to the serial sweep.
#include <iostream>

#include "analysis/validation.hpp"
#include "exp/bench_io.hpp"
#include "exp/grid.hpp"
#include "support/cli.hpp"
#include "support/parallel.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace neatbound;
  CliArgs args(argc, argv);
  const double n = args.get_double("n", 200);
  const std::uint64_t rounds = args.get_uint("rounds", 100000);
  const auto seeds = static_cast<std::uint32_t>(args.get_uint("seeds", 10));
  const exp::BenchOptions io = exp::parse_bench_options(args);
  if (args.handle_help(std::cout)) return 0;
  args.reject_unconsumed();

  std::cout << "# Eq. (27) — adversary block count: simulated vs T*p*nu*n, "
               "plus the Eq. (49) tail exponent at +10% deviation\n"
            << "# n=" << n << " rounds=" << rounds << " seeds=" << seeds
            << '\n';

  exp::BenchReporter report("bench_adversary_blocks", io);
  report.set_meta_number("n", n);
  report.set_meta_number("rounds", static_cast<double>(rounds));
  report.set_meta_number("seeds", seeds);

  exp::SweepGrid grid;
  grid.axis("delta", {2.0, 8.0});
  grid.axis("c", {1.0, 4.0});
  grid.axis("nu", {0.1, 0.25, 0.4});
  const auto points = grid.points();

  std::vector<analysis::AdversaryCountRow> rows(points.size());
  parallel_for_indexed(points.size(), io.threads, [&](std::size_t i) {
    rows[i] = analysis::validate_adversary_count(
        n, points[i].value("delta"), points[i].value("c"),
        points[i].value("nu"), rounds, seeds);
  });

  report.begin_section("", {"delta", "c", "nu", "expected", "simulated",
                            "stderr", "ratio",
                            "ln P[A >= 1.1 E[A]] bound"});
  bool all_close = true;
  for (const auto& row : rows) {
    all_close &= row.ratio > 0.95 && row.ratio < 1.05;
    report.add_row(
        {format_fixed(row.delta, 0), format_fixed(row.c, 0),
         format_fixed(row.nu, 2), format_fixed(row.expected_count, 1),
         format_fixed(row.simulated_mean, 1),
         format_fixed(row.simulated_stderr, 1), format_fixed(row.ratio, 4),
         format_fixed(row.tail_exponent_at_10pct, 1)});
  }
  report.set_meta("all_within_5pct", all_close ? "yes" : "no");
  report.finish();
  std::cout << "\ncheck: simulated/expected within 5% on every row: "
            << (all_close ? "yes" : "NO") << '\n';
  return all_close ? 0 : 1;
}
