// Eq. (27)/(49) validation: A(t₀, t₀+T−1) ~ Binomial(Tνn, p) with mean
// Tpνn, and the Arratia–Gordon upper-tail bound (the paper's Eq. 49)
// evaluated alongside the empirical deviation.
#include <iostream>

#include "analysis/validation.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace neatbound;
  CliArgs args(argc, argv);
  const double n = args.get_double("n", 200);
  const std::uint64_t rounds = args.get_uint("rounds", 100000);
  const auto seeds = static_cast<std::uint32_t>(args.get_uint("seeds", 10));
  args.reject_unconsumed();

  std::cout << "# Eq. (27) — adversary block count: simulated vs T*p*nu*n, "
               "plus the Eq. (49) tail exponent at +10% deviation\n"
            << "# n=" << n << " rounds=" << rounds << " seeds=" << seeds
            << '\n';

  TablePrinter table({"delta", "c", "nu", "expected", "simulated", "stderr",
                      "ratio", "ln P[A >= 1.1 E[A]] bound"});
  bool all_close = true;
  for (const double delta : {2.0, 8.0}) {
    for (const double c : {1.0, 4.0}) {
      for (const double nu : {0.1, 0.25, 0.4}) {
        const auto row = analysis::validate_adversary_count(
            n, delta, c, nu, rounds, seeds);
        all_close &= row.ratio > 0.95 && row.ratio < 1.05;
        table.add_row(
            {format_fixed(delta, 0), format_fixed(c, 0), format_fixed(nu, 2),
             format_fixed(row.expected_count, 1),
             format_fixed(row.simulated_mean, 1),
             format_fixed(row.simulated_stderr, 1),
             format_fixed(row.ratio, 4),
             format_fixed(row.tail_exponent_at_10pct, 1)});
      }
    }
  }
  table.print(std::cout);
  std::cout << "\ncheck: simulated/expected within 5% on every row: "
            << (all_close ? "yes" : "NO") << '\n';
  return all_close ? 0 : 1;
}
