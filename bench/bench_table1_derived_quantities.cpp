// Table I rendering: every symbol the paper defines (p, n, Δ, c, μ, ν, α,
// ᾱ, α₁), evaluated at representative parameter points — paper scale
// (n = 10⁵, Δ = 10¹³) and the laptop scale the simulator runs at — plus
// which bounds certify consistency there.
#include <iostream>

#include "analysis/tables.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace neatbound;
  CliArgs args(argc, argv);
  if (args.handle_help(std::cout)) return 0;
  args.reject_unconsumed();

  std::cout << "# Table I — derived per-round quantities at representative "
               "parameter points\n"
            << "# alpha = P[some honest block], alpha_bar = P[none], "
               "alpha1 = P[exactly one]  (Eqs. 7-9)\n";

  TablePrinter table({"n", "delta", "nu", "c", "p", "ln(alpha)",
                      "ln(alpha_bar)", "ln(alpha1)", "p*nu*n",
                      "thm1 ln-margin", "thm1", "thm2", "pss"});
  for (const auto& params : analysis::representative_points()) {
    const auto row = analysis::derived_quantities(params);
    table.add_row({format_general(row.n, 4), format_general(row.delta, 4),
                   format_fixed(row.nu, 2), format_general(row.c, 4),
                   format_sci(row.p, 2), format_sci(row.log_alpha, 4),
                   format_sci(row.log_alpha_bar, 4),
                   format_sci(row.log_alpha1, 4),
                   format_sci(row.adversary_rate, 2),
                   format_general(row.theorem1_log_margin, 4),
                   row.theorem1_ok ? "ok" : "fail",
                   row.theorem2_ok ? "ok" : "fail",
                   row.pss_ok ? "ok" : "fail"});
  }
  table.print(std::cout);
  std::cout << "\nnote: ln(alpha_bar) is reported in log space because at "
               "paper scale alpha_bar = 1 - O(1e-14)\n"
               "and alpha underflows linear doubles only in the printout, "
               "never in the computation.\n";
  return 0;
}
