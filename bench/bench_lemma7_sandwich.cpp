// Lemma 7 verification: 2/ln(μ/ν) ≤ 1/(Δ(1−(ν/μ)^{1/(2Δ)})) ≤ 2/ln(μ/ν)+1/Δ
// (Inequality 82), swept over ν and Δ up to the paper's 10¹³, with the
// relative slack of each side tabulated.
#include <iostream>

#include "bounds/zhao.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace neatbound;
  CliArgs args(argc, argv);
  if (args.handle_help(std::cout)) return 0;
  args.reject_unconsumed();

  std::cout << "# Lemma 7 — the sandwich that yields the neat bound\n";
  TablePrinter table({"nu", "delta", "lower 2/ln", "middle", "upper",
                      "holds", "(mid-lo)/lo", "(up-mid)/mid"});
  bool all_hold = true;
  for (const double nu : {1e-12, 1e-4, 0.1, 0.25, 0.4, 0.49}) {
    for (const double delta : {1.0, 8.0, 1e3, 1e8, 1e13}) {
      const auto s = bounds::lemma7_sandwich(nu, delta);
      all_hold &= s.holds();
      table.add_row({format_general(nu, 3), format_general(delta, 3),
                     format_general(s.lower, 6), format_general(s.middle, 6),
                     format_general(s.upper, 6), s.holds() ? "yes" : "NO",
                     format_sci((s.middle - s.lower) / s.lower, 2),
                     format_sci((s.upper - s.middle) / s.middle, 2)});
    }
  }
  table.print(std::cout);
  std::cout << "\ncheck: sandwich holds on every row: "
            << (all_hold ? "yes" : "NO") << '\n'
            << "reading: as delta grows the middle term collapses onto "
               "2/ln(mu/nu) — this is where the neat bound comes from.\n";
  return all_hold ? 0 : 1;
}
