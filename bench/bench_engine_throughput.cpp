// Engine throughput baseline: wall-clock rounds/sec and blocks/sec of the
// round-based execution engine across a small n × Δ × p grid, under the
// private-withholding adversary (the paper's consistency attacker, which
// exercises every hot path: delivery, reorgs, ancestry queries, and the
// adversary's per-query best-tip reads).
//
// Unlike the sweep benches this driver is deliberately SERIAL — each cell
// is timed on the calling thread so rounds/sec measures the single-core
// hot path, the quantity the perf trajectory tracks.  A `--threads` flag
// is still accepted (uniform bench surface) but ignored for the timing
// loop.
//
// The JSON summary (via the shared JsonSink) is what scripts/perf_baseline
// writes to BENCH_engine.json at the repo root; its meta carries the
// aggregate `rounds_per_sec` that CI's perf_baseline job compares against
// the checked-in baseline (scripts/check_perf_regression.py).
#include <chrono>
#include <iostream>
#include <string>

#include "bounds/zhao.hpp"
#include "exp/bench_io.hpp"
#include "sim/batch_engine.hpp"
#include "sim/runner.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"
#include "support/telemetry.hpp"

// Stamped by bench/CMakeLists.txt; fall back loudly for ad-hoc compiles.
#ifndef NEATBOUND_BUILD_TYPE
#define NEATBOUND_BUILD_TYPE "unknown"
#endif
#ifndef NEATBOUND_SANITIZE_FLAGS
#define NEATBOUND_SANITIZE_FLAGS "unknown"
#endif

int main(int argc, char** argv) {
  using namespace neatbound;
  using Clock = std::chrono::steady_clock;

  CliArgs args(argc, argv);
  const std::uint64_t rounds = args.get_uint("rounds", 8000);
  const auto seeds = static_cast<std::uint32_t>(args.get_uint("seeds", 2));
  const double nu = args.get_double("nu", 0.25);
  const std::uint64_t violation_t = args.get_uint("violation-t", 8);
  // --batch-seeds W > 0 appends the cross-seed batched section: the
  // adaptive same-cell workload (one sparse cell, W seeds) timed both as
  // W serial engine runs and as one lockstep batched pass
  // (sim/batch_engine.hpp).  0 skips the section; the grid above is
  // always serial, so rounds_per_sec keeps its historical meaning.
  const auto batch_seeds =
      static_cast<std::uint32_t>(args.get_uint("batch-seeds", 0));
  const exp::BenchOptions io = exp::parse_bench_options(args);
  if (args.handle_help(std::cout)) return 0;
  args.reject_unconsumed();

  std::cout << "# Engine throughput — rounds/sec and blocks/sec over an "
               "n x delta x p grid (private-withholding, nu="
            << format_fixed(nu, 2) << ", T=" << rounds
            << ", seeds=" << seeds << ", serial timing)\n";

  exp::BenchReporter report("bench_engine_throughput", io);
  report.set_meta_number("rounds", static_cast<double>(rounds));
  report.set_meta_number("seeds", seeds);
  report.set_meta_number("nu", nu);
  // Build provenance: scripts/perf_baseline reads these to refuse
  // appending an instrumented (sanitized or non-Release) run to the
  // BENCH_history.jsonl perf trajectory.
  report.set_meta("build_type", NEATBOUND_BUILD_TYPE);
  report.set_meta("sanitize", NEATBOUND_SANITIZE_FLAGS);
  // Telemetry provenance: the perf trajectory only accepts telemetry-OFF
  // throughput (the timers cost a few clock reads per round); ON runs are
  // harvested separately for the per-phase breakdown (scripts/perf_baseline).
  report.set_meta("telemetry", telemetry::enabled() ? "ON" : "OFF");

  const std::uint32_t miners_axis[] = {16, 64, 160};
  const std::uint64_t delta_axis[] = {1, 4};
  const double p_axis[] = {0.001, 0.01};

  report.begin_section(
      "", {"n", "delta", "p", "blocks", "elapsed s", "rounds/s", "blocks/s",
           "violation depth"});

  double total_rounds = 0.0;
  double total_blocks = 0.0;
  double total_seconds = 0.0;
  telemetry::TelemetryAccumulator telemetry_total;
  for (const std::uint32_t miners : miners_axis) {
    for (const std::uint64_t delta : delta_axis) {
      for (const double p : p_axis) {
        sim::ExperimentConfig config;
        config.engine.miner_count = miners;
        config.engine.adversary_fraction = nu;
        config.engine.delta = delta;
        config.engine.p = p;
        config.engine.rounds = rounds;
        config.adversary = sim::AdversaryKind::kPrivateWithhold;
        config.seeds = seeds;

        const auto start = Clock::now();
        const sim::ExperimentSummary summary =
            sim::run_experiment(config, violation_t);
        const double seconds =
            std::chrono::duration<double>(Clock::now() - start).count();

        const double cell_rounds =
            static_cast<double>(rounds) * static_cast<double>(seeds);
        const auto sum_of = [](const stats::RunningStats& s) {
          return s.mean() * static_cast<double>(s.count());
        };
        const double cell_blocks =
            sum_of(summary.honest_blocks) + sum_of(summary.adversary_blocks);
        total_rounds += cell_rounds;
        total_blocks += cell_blocks;
        total_seconds += seconds;
        telemetry_total.merge(summary.telemetry);

        report.add_row({std::to_string(miners), std::to_string(delta),
                        format_fixed(p, 4), format_fixed(cell_blocks, 0),
                        format_fixed(seconds, 3),
                        format_fixed(cell_rounds / seconds, 0),
                        format_fixed(cell_blocks / seconds, 0),
                        format_fixed(summary.violation_depth.mean(), 1)});
      }
    }
  }

  const double rounds_per_sec =
      total_seconds > 0.0 ? total_rounds / total_seconds : 0.0;
  const double blocks_per_sec =
      total_seconds > 0.0 ? total_blocks / total_seconds : 0.0;
  report.set_meta_number("rounds_per_sec", rounds_per_sec);
  report.set_meta_number("blocks_per_sec", blocks_per_sec);
  report.set_meta_number("total_engine_seconds", total_seconds);
  if (telemetry::enabled()) {
    // Per-phase breakdown for the perf dashboard.  Only stamped when the
    // timers exist; the regression gate reads rounds_per_sec alone and
    // ignores unknown meta keys, so this is additive.
    report.set_meta_number("telemetry_runs",
                           static_cast<double>(telemetry_total.runs));
    for (std::size_t c = 0; c < telemetry::kCounterCount; ++c) {
      report.set_meta_number(
          std::string("tel_") +
              telemetry::counter_name(static_cast<telemetry::Counter>(c)),
          static_cast<double>(telemetry_total.counters[c]));
    }
    for (std::size_t ph = 0; ph < telemetry::kPhaseCount; ++ph) {
      report.set_meta_number(
          std::string("tel_phase_") +
              telemetry::phase_name(static_cast<telemetry::Phase>(ph)) +
              "_seconds",
          static_cast<double>(telemetry_total.phase_nanos[ph]) * 1e-9);
    }
  }
  if (batch_seeds > 0) {
    // The adaptive same-cell workload: one sparse cell of the adaptive
    // consistency sweep (scenarios/adaptive_consistency.json — miners
    // 40, Δ 3, private-withholding, hardness a safe multiple of the neat
    // bound), where one wave = batch_seeds seeds of one config.  Sparse
    // cells are where cross-seed batching pays: most rounds are provably
    // quiet and a batched lane commits whole runs of them in O(1).
    // Three modes are timed on identical seeds: the legacy sequential-
    // RNG serial path (the engine's only mode before the counter RNG
    // landed — the reference the batch-speedup claim is made against),
    // the counter-RNG serial path, and the batched pass.
    constexpr double kHardnessMultiple = 2.5;
    sim::ExperimentConfig cell;
    cell.engine.miner_count = 40;
    cell.engine.adversary_fraction = nu;
    cell.engine.delta = 3;
    cell.engine.p =
        1.0 / (bounds::neat_bound_c(nu) * kHardnessMultiple *
               static_cast<double>(cell.engine.miner_count) *
               static_cast<double>(cell.engine.delta));
    cell.engine.rounds = rounds;
    cell.adversary = sim::AdversaryKind::kPrivateWithhold;
    cell.seeds = batch_seeds;
    const sim::AdversaryFactory factory =
        sim::default_adversary_factory(cell.adversary);
    const double cell_rounds = static_cast<double>(rounds) *
                               static_cast<double>(batch_seeds);
    const auto time_summary = [&](auto&& run) {
      const auto start = Clock::now();
      const sim::ExperimentSummary summary = run();
      const double seconds =
          std::chrono::duration<double>(Clock::now() - start).count();
      return std::pair<sim::ExperimentSummary, double>(summary, seconds);
    };

    sim::ExperimentConfig legacy_cell = cell;
    legacy_cell.engine.rng_mode = sim::RngMode::kLegacy;
    const auto [legacy_summary, legacy_seconds] = time_summary([&] {
      return sim::run_experiment_with(legacy_cell, violation_t, factory);
    });
    const auto [serial_summary, serial_seconds] = time_summary([&] {
      return sim::run_experiment_with(cell, violation_t, factory);
    });
    const auto [batched_summary, batched_seconds] = time_summary([&] {
      return sim::run_experiment_batched_with(cell, violation_t, factory,
                                              batch_seeds);
    });

    // The batched pass must be a pure execution detail: any summary
    // drift here means the differential battery should have caught it.
    if (batched_summary.violation_depth.mean() !=
            serial_summary.violation_depth.mean() ||
        batched_summary.honest_blocks.mean() !=
            serial_summary.honest_blocks.mean()) {
      std::cerr << "bench_engine_throughput: batched summary diverged "
                   "from serial on the same-cell workload\n";
      return 1;
    }

    const auto rps = [cell_rounds](double seconds) {
      return seconds > 0.0 ? cell_rounds / seconds : 0.0;
    };
    const double legacy_rps = rps(legacy_seconds);
    const double serial_rps = rps(serial_seconds);
    const double batched_rps = rps(batched_seconds);
    report.begin_section(
        "adaptive same-cell workload (n=40, delta=3, p at " +
            format_fixed(kHardnessMultiple, 1) + "x the neat bound, W=" +
            std::to_string(batch_seeds) + ")",
        {"mode", "rng", "elapsed s", "rounds/s"});
    report.add_row({"serial", "legacy", format_fixed(legacy_seconds, 3),
                    format_fixed(legacy_rps, 0)});
    report.add_row({"serial", "counter", format_fixed(serial_seconds, 3),
                    format_fixed(serial_rps, 0)});
    report.add_row({"batched", "counter", format_fixed(batched_seconds, 3),
                    format_fixed(batched_rps, 0)});
    report.set_meta_number("batch_seeds", batch_seeds);
    report.set_meta_number("samecell_legacy_rounds_per_sec", legacy_rps);
    report.set_meta_number("samecell_serial_rounds_per_sec", serial_rps);
    report.set_meta_number("batched_rounds_per_sec", batched_rps);
    report.set_meta_number(
        "batch_speedup",
        legacy_rps > 0.0 ? batched_rps / legacy_rps : 0.0);
    report.set_meta_number(
        "batch_speedup_vs_counter_serial",
        serial_rps > 0.0 ? batched_rps / serial_rps : 0.0);
  }

  report.finish();

  std::cout << "\naggregate: " << format_fixed(rounds_per_sec, 0)
            << " rounds/s, " << format_fixed(blocks_per_sec, 0)
            << " blocks/s over " << format_fixed(total_seconds, 2)
            << " s of engine time\n";
  return 0;
}
